"""Command-line front end of ``cubism-lint``.

Usage::

    python -m repro.analysis src/repro          # lint the solver tree
    python -m repro.analysis --list-rules       # print the rule catalogue
    cubism-lint src/repro --select CL001,CL002  # installed entry point

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from .lint import LintConfig, format_violations, lint_paths, registered_rules

# Importing the catalogue populates the registry.
from . import rules as _rules  # noqa: F401  (registry population)


def _rule_set(spec: str | None) -> frozenset[str] | None:
    if spec is None:
        return None
    return frozenset(r.strip() for r in spec.split(",") if r.strip())


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the lint CLI."""
    ap = argparse.ArgumentParser(
        prog="cubism-lint",
        description="Solver-aware lint enforcing the repo's precision, "
        "stencil and conservation contracts.",
    )
    ap.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    ap.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    ap.add_argument(
        "--ignore", metavar="RULES", default="",
        help="comma-separated rule ids to skip",
    )
    ap.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    ap.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line, print violations only",
    )
    return ap


def list_rules() -> str:
    """Returns the formatted rule catalogue (id, name, scope, summary)."""
    lines = []
    for cls in registered_rules():
        scope = ", ".join(cls.default_paths) if cls.default_paths else "all files"
        lines.append(f"{cls.rule_id}  {cls.name}  [{scope}]")
        lines.append(f"       {cls.description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    select = _rule_set(args.select)
    ignore = _rule_set(args.ignore) or frozenset()
    known = {cls.rule_id for cls in registered_rules()}
    unknown = ((select or frozenset()) | ignore) - known
    if unknown:
        print(
            f"cubism-lint: unknown rule id(s): {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2

    config = LintConfig(select=select, ignore=ignore)
    try:
        violations = lint_paths(args.paths, config)
    except OSError as exc:
        print(f"cubism-lint: {exc}", file=sys.stderr)
        return 2
    if violations:
        print(format_violations(violations))
        if not args.quiet:
            print(
                f"\n{len(violations)} violation(s) in "
                f"{len({v.path for v in violations})} file(s)",
                file=sys.stderr,
            )
        return 1
    if not args.quiet:
        print("cubism-lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
