"""Command-line front end of the four static analysis families.

Usage::

    python -m repro.analysis src/repro            # lint the solver tree
    python -m repro.analysis --concurrency src/repro  # static comm-check
    python -m repro.analysis --perf src/repro     # static perf analyzer
    python -m repro.analysis --sys src/repro      # static sys-check
    python -m repro.analysis --all src/repro      # all four, one report
    python -m repro.analysis --list-rules         # print the catalogues
    cubism-lint src/repro --select CL001,CL002    # installed entry point

``--perf`` (and ``--all``) additionally emit the kernel certification
manifest (``--manifest-out``, default ``kernel_manifest.json``).
``--all`` merges every family into one JSON report
(``repro.analysis_report/v1``) with a worst-of exit code, collapsing
four CI invocations into one.

Exit codes: 0 clean, 1 violations found, 2 usage/config error (unknown
rule id, nonexistent path, unreadable file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .concurrency import registered_program_rules
from .concurrency import check_paths as comm_check_paths
from .lint import LintConfig, format_violations, lint_paths, registered_rules
from .perfcheck import analyze_paths, registered_perf_rules, write_kernel_manifest
from .syscheck import registered_sys_rules
from .syscheck import check_paths as sys_check_paths

# Importing the catalogue populates the registry.
from . import rules as _rules  # noqa: F401  (registry population)

#: Schema identifier of the merged ``--all`` report.
MERGED_SCHEMA = "repro.analysis_report/v1"


def _rule_set(spec: str | None) -> frozenset[str] | None:
    if spec is None:
        return None
    return frozenset(r.strip() for r in spec.split(",") if r.strip())


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the analysis CLI."""
    ap = argparse.ArgumentParser(
        prog="cubism-lint",
        description="Solver-aware lint enforcing the repo's precision, "
        "stencil and conservation contracts, plus the static MPI "
        "protocol verifier (--concurrency).",
    )
    ap.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    ap.add_argument(
        "--concurrency", action="store_true",
        help="run comm-check (whole-program MPI protocol verification, "
        "CC-series rules) instead of the per-file lint rules",
    )
    ap.add_argument(
        "--perf", action="store_true",
        help="run kernel-check (static hot-path performance analyzer, "
        "CP-series rules) and emit the kernel certification manifest",
    )
    ap.add_argument(
        "--sys", dest="syscheck", action="store_true",
        help="run sys-check (resource-lifecycle & process-safety "
        "analysis of the multi-process layers, RS-series rules)",
    )
    ap.add_argument(
        "--all", dest="all_families", action="store_true",
        help="run every family (lint + comm + perf + sys) in one pass "
        "and emit a single merged report with a worst-of exit code",
    )
    ap.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="where --perf writes kernel_manifest.json "
        "(default: ./kernel_manifest.json)",
    )
    ap.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    ap.add_argument(
        "--ignore", metavar="RULES", default="",
        help="comma-separated rule ids to skip",
    )
    ap.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogues and exit",
    )
    ap.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="write the findings as a JSON report (the CI artifact)",
    )
    ap.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line, print violations only",
    )
    return ap


def list_rules() -> str:
    """Returns the formatted rule catalogues (lint + comm-check)."""
    lines = []
    for cls in registered_rules():
        scope = ", ".join(cls.default_paths) if cls.default_paths else "all files"
        lines.append(f"{cls.rule_id}  {cls.name}  [{scope}]")
        lines.append(f"       {cls.description}")
    for cls in registered_program_rules():
        lines.append(f"{cls.rule_id}  {cls.name}  [whole program, --concurrency]")
        lines.append(f"       {cls.description}")
    for cls in registered_perf_rules():
        lines.append(f"{cls.rule_id}  {cls.name}  [hot-path kernels, --perf]")
        lines.append(f"       {cls.description}")
    for cls in registered_sys_rules():
        scope = ", ".join(cls.paths)
        lines.append(f"{cls.rule_id}  {cls.name}  [{scope}, --sys]")
        lines.append(f"       {cls.description}")
    return "\n".join(lines)


def _known_rule_ids() -> set[str]:
    """Every selectable rule id (CLxxx + CCxxx + CPxxx + RSxxx)."""
    return (
        {cls.rule_id for cls in registered_rules()}
        | {cls.rule_id for cls in registered_program_rules()}
        | {cls.rule_id for cls in registered_perf_rules()}
        | {cls.rule_id for cls in registered_sys_rules()}
    )


def _filtered(violations, select, ignore):
    return [
        v for v in violations
        if (select is None or v.rule in select) and v.rule not in ignore
    ]


def run_all(paths, select=None, ignore=frozenset(),
            manifest_out=None) -> tuple[dict, list]:
    """Run lint + comm + perf + sys over ``paths`` in one pass.

    Returns ``(payload, violations)``: the merged
    ``repro.analysis_report/v1`` JSON payload and the flat, sorted
    violation list (the worst-of exit code is ``1`` iff non-empty).
    Emits the kernel manifest exactly like a plain ``--perf`` run.
    """
    lint_violations = lint_paths(paths, LintConfig(select=select,
                                                   ignore=ignore))
    comm_report = comm_check_paths(paths)
    comm_report.violations = _filtered(comm_report.violations,
                                       select, ignore)
    program, perf_report = analyze_paths(paths)
    perf_report.violations = _filtered(perf_report.violations,
                                       select, ignore)
    write_kernel_manifest(program, perf_report,
                          manifest_out or "kernel_manifest.json")
    sys_report = sys_check_paths(paths)
    sys_report.violations = _filtered(sys_report.violations,
                                      select, ignore)

    by_family = [
        ("lint", lint_violations, {"findings": [
            {"path": v.path, "line": v.line, "col": v.col,
             "rule": v.rule, "message": v.message}
            for v in lint_violations
        ]}),
        ("comm", comm_report.violations, comm_report.to_dict()),
        ("perf", perf_report.violations, perf_report.to_dict()),
        ("sys", sys_report.violations, sys_report.to_dict()),
    ]
    findings = [
        {"family": family, "path": v.path, "line": v.line, "col": v.col,
         "rule": v.rule, "message": v.message}
        for family, violations, _ in by_family
        for v in violations
    ]
    payload = {
        "schema": MERGED_SCHEMA,
        "families": {family: report for family, _, report in by_family},
        "findings": sorted(
            findings, key=lambda f: (f["path"], f["line"], f["rule"])
        ),
        "totals": {
            "findings": len(findings),
            "by_family": {
                family: len(violations)
                for family, violations, _ in by_family
            },
        },
    }
    merged = [v for _, violations, _ in by_family for v in violations]
    merged.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return payload, merged


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    select = _rule_set(args.select)
    ignore = _rule_set(args.ignore) or frozenset()
    unknown = ((select or frozenset()) | ignore) - _known_rule_ids()
    if unknown:
        print(
            f"cubism-lint: unknown rule id(s): {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"cubism-lint: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    try:
        if args.all_families:
            payload, violations = run_all(
                args.paths, select=select, ignore=ignore,
                manifest_out=args.manifest_out,
            )
            totals = payload["totals"]["by_family"]
            clean_msg = "analysis: all families clean ({})".format(
                ", ".join(f"{fam}={n}" for fam, n in totals.items())
            )
        elif args.syscheck:
            report = sys_check_paths(args.paths)
            violations = _filtered(report.violations, select, ignore)
            report.violations = violations
            payload = report.to_dict()
            clean_msg = f"sys-check: {report.summary()}"
        elif args.perf:
            program, report = analyze_paths(args.paths)
            violations = [
                v for v in report.violations
                if (select is None or v.rule in select)
                and v.rule not in ignore
            ]
            report.violations = violations
            payload = report.to_dict()
            clean_msg = f"kernel-check: {report.summary()}"
            manifest_out = args.manifest_out or "kernel_manifest.json"
            try:
                write_kernel_manifest(program, report, manifest_out)
            except OSError as exc:
                print(f"cubism-lint: {exc}", file=sys.stderr)
                return 2
        elif args.concurrency:
            report = comm_check_paths(args.paths)
            violations = [
                v for v in report.violations
                if (select is None or v.rule in select)
                and v.rule not in ignore
            ]
            report.violations = violations
            payload = report.to_dict()
            clean_msg = f"comm-check: {report.summary()}"
        else:
            config = LintConfig(select=select, ignore=ignore)
            violations = lint_paths(args.paths, config)
            payload = {
                "findings": [
                    {"path": v.path, "line": v.line, "col": v.col,
                     "rule": v.rule, "message": v.message}
                    for v in violations
                ],
            }
            clean_msg = "cubism-lint: clean"
    except OSError as exc:
        print(f"cubism-lint: {exc}", file=sys.stderr)
        return 2
    if args.report_out:
        try:
            with open(args.report_out, "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=2)
        except OSError as exc:
            print(f"cubism-lint: {exc}", file=sys.stderr)
            return 2
    if violations:
        print(format_violations(violations))
        if not args.quiet:
            print(
                f"\n{len(violations)} violation(s) in "
                f"{len({v.path for v in violations})} file(s)",
                file=sys.stderr,
            )
        return 1
    if not args.quiet:
        print(clean_msg, file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
