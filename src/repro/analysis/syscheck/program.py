"""Whole-program resource/process facts for the RS rules.

Mirrors the comm-check extraction strategy
(:mod:`repro.analysis.concurrency.commcheck`): parse every source into
the shared :class:`~repro.analysis.lint.SourceFile`, build a
program-wide function table, then compute per-function *facts* --
resource acquisitions with their release/escape structure, lockset
regions with the calls they cover, blocking-call sites, spawn targets
and durable-write sites.  The rules in
:mod:`repro.analysis.syscheck.rules` are thin pattern matches over
these facts.

Bounded like comm-check: one level of helper substitution (a helper
that *returns* a resource it created makes its call sites
acquisitions; a callee whose body blocks makes its call sites
blocking), resolved through the call graph by bare name with a
receiver-text hint for generic names (``self.cache.get`` resolves to
``ResultCache.get``; ``self._jobs.get`` -- a dict -- resolves to
nothing).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..lint import SourceFile
from .model import (
    BLOCKING_ATTRS,
    BLOCKING_CALLS,
    BLOCKING_PATH_IO,
    EAGER_KINDS,
    GENERIC_NAMES,
    LOCKLIKE_HINTS,
    QUEUE_RECEIVER_SUFFIXES,
    RELEASERS,
    RESOURCE_CTORS,
    WAIT_ATTRS,
    WITH_RELEASED_KINDS,
)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _callee_bare(call: ast.Call) -> str:
    """Last path component of the called expression ('' if exotic)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _ctor_kind(call: ast.Call) -> str | None:
    return RESOURCE_CTORS.get(_callee_bare(call))


def _kw(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_true(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _locklike(expr: ast.expr) -> str | None:
    """Source text of a lock-acquiring ``with`` item, else ``None``."""
    if isinstance(expr, ast.Call) and _callee_bare(expr) == "get_lock":
        return _dotted(expr.func.value) + ".get_lock()"
    text = _dotted(expr)
    low = text.lower()
    if text and any(h in low for h in LOCKLIKE_HINTS):
        return text
    return None


def _blocking_reason(call: ast.Call, held: frozenset = frozenset()) -> str | None:
    """Why this call blocks the calling thread, or ``None``.

    ``held`` is the set of held lock texts: waiting on the held lock
    itself (``with cv: cv.wait()``) releases it and is exempt.
    """
    dotted = _dotted(call.func)
    bare = _callee_bare(call)
    if dotted in BLOCKING_CALLS or (not isinstance(call.func, ast.Attribute)
                                    and bare in ("open", "sleep")):
        return f"{dotted or bare}() is blocking IO"
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    recv_node = call.func.value
    recv = _dotted(recv_node)
    if attr in BLOCKING_ATTRS:
        # ", ".join(...) / os.path.join(...) are not thread joins.
        if attr == "join" and (
            isinstance(recv_node, ast.Constant)
            or recv.endswith("path")
            or recv in ("os", "posixpath", "ntpath")
        ):
            return None
        return f".{attr}() blocks until the peer yields"
    if attr in WAIT_ATTRS:
        if recv and recv in held:
            return None  # condition wait releases the held lock
        return f".{attr}() parks the calling thread"
    if attr == "get" and not attr.endswith("nowait"):
        low = recv.lower()
        if low.endswith(QUEUE_RECEIVER_SUFFIXES):
            return ".get() blocks on an empty queue"
    if attr in BLOCKING_PATH_IO:
        return f".{attr}() is file IO"
    return None


def _branch_arms(node: ast.AST, stop: ast.AST,
                 parents: dict, var: str | None = None) -> frozenset:
    """Branch arms between ``node`` and ``stop`` (exclusive).

    Each arm is ``(id(ancestor), field)`` for If bodies/orelse, except
    handlers, loop bodies and Try orelse -- the constructs a statement
    may not reach.  An ``if`` whose test mentions ``var`` (the
    ``if handle is not None: handle.close()`` idiom) is not counted.
    """
    arms = set()
    child = node
    cur = parents.get(node)
    while cur is not None and cur is not stop:
        fields = ()
        if isinstance(cur, ast.If):
            fields = ("body", "orelse")
        elif isinstance(cur, ast.ExceptHandler):
            fields = ("body",)
        elif isinstance(cur, _LOOP_NODES):
            fields = ("body", "orelse")
        elif isinstance(cur, ast.Try):
            fields = ("orelse",)
        for f in fields:
            if child in getattr(cur, f, []):
                guarded = (
                    var is not None
                    and isinstance(cur, ast.If)
                    and any(isinstance(n, ast.Name) and n.id == var
                            for n in ast.walk(cur.test))
                )
                if not guarded:
                    arms.add((id(cur), f))
        child = cur
        cur = parents.get(cur)
    return frozenset(arms)


def _enclosing_stmt(node: ast.AST, parents: dict) -> ast.stmt | None:
    cur = node
    while cur is not None and not isinstance(cur, ast.stmt):
        cur = parents.get(cur)
    return cur


@dataclass
class Release:
    node: ast.AST
    line: int
    method: str
    covered_by_finally: bool = False  # finally of a try enclosing the acquire
    finally_after_acq: bool = False   # finally of a try *after* the acquire
    guard_try: ast.Try | None = None
    conditional: bool = False


@dataclass
class Acquisition:
    var: str | None
    kind: str
    call: ast.Call
    stmt: ast.stmt
    create: bool = False        # SharedMemory(..., create=True)
    daemon: bool | None = None  # Thread daemon flag (ctor or attr set)
    started: bool = False       # .start() seen (process/thread kinds)
    escaped: bool = False
    discarded: bool = False     # bare-expression acquire, never bound
    bulk: bool = False          # constructed inside a loop/comprehension
    bulk_guarded: bool = False  # ... whose enclosing try releases handles
    from_helper: str | None = None
    releases: list[Release] = field(default_factory=list)


@dataclass
class LockedCall:
    call: ast.Call
    held: frozenset  # lock texts


@dataclass
class FuncInfo:
    path: str
    name: str
    qualname: str
    class_name: str | None
    node: ast.AST
    module_level: bool
    # -- facts (filled by the analysis passes) --
    acquisitions: list[Acquisition] = field(default_factory=list)
    locked_calls: list[LockedCall] = field(default_factory=list)
    blocking_direct: list[tuple] = field(default_factory=list)
    spawn_sites: list[ast.Call] = field(default_factory=list)
    write_opens: list[ast.Call] = field(default_factory=list)
    path_writes: list[ast.Call] = field(default_factory=list)
    calls_fsync: bool = False
    calls_replace: bool = False
    has_any_join: bool = False
    #: kinds of resources this function creates and hands to its caller
    returned_kinds: frozenset = frozenset()
    returns_started_thread: bool = False


class SysProgram:
    """Parsed sources plus the program-wide fact tables."""

    def __init__(self, sources: dict[str, SourceFile]):
        self.sources = sources
        #: bare name -> [FuncInfo] across every file
        self.functions: dict[str, list[FuncInfo]] = {}
        #: path -> module-level names bound to mutable literals
        self.module_mutables: dict[str, set] = {}
        #: path -> SharedMemory facts for RS002
        self.shm_creates: dict[str, list[ast.Call]] = {}
        self.shm_attaches: dict[str, list[ast.Call]] = {}
        self.shm_unlinks: dict[str, list[ast.AST]] = {}
        self._infos: list[FuncInfo] = []
        self._parents: dict[str, dict] = {}
        for path in sorted(sources):
            self._extract(path, sources[path])
        # Pass 1: direct facts (needed before helper substitution can
        # resolve resource-returning callees in any order).
        for info in self._infos:
            self._analyze_direct(info)
            self._returned_resources(info)
        # Pass 2: one-level helper substitution + lockset regions.
        for info in self._infos:
            self._analyze_helpers(info)
            self._find_locked_calls(info)
        self._bearing = self._compute_bearing()

    # -- extraction ---------------------------------------------------

    def _extract(self, path: str, src: SourceFile) -> None:
        parents = src.parents()
        self._parents[path] = parents
        mutables = set()
        for stmt in src.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, (ast.Dict, ast.List, ast.Set)
            ):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        mutables.add(t.id)
        self.module_mutables[path] = mutables
        creates, attaches, unlinks = [], [], []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                if _callee_bare(node) == "SharedMemory":
                    if _is_true(_kw(node, "create")):
                        creates.append(node)
                    else:
                        attaches.append(node)
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr == "unlink"
                      and _dotted(node.func.value)):
                    unlinks.append(node)
            if isinstance(node, _FUNC_NODES):
                cls = parents.get(node)
                class_name = cls.name if isinstance(cls, ast.ClassDef) else None
                enclosing = parents.get(node)
                nested = False
                while enclosing is not None:
                    if isinstance(enclosing, _FUNC_NODES):
                        nested = True
                        break
                    enclosing = parents.get(enclosing)
                qual = f"{class_name}.{node.name}" if class_name else node.name
                info = FuncInfo(
                    path=path, name=node.name, qualname=qual,
                    class_name=class_name, node=node,
                    module_level=not nested,
                )
                self._infos.append(info)
                self.functions.setdefault(node.name, []).append(info)
        self.shm_creates[path] = creates
        self.shm_attaches[path] = attaches
        self.shm_unlinks[path] = unlinks

    # -- per-function facts --------------------------------------------

    def infos(self) -> list[FuncInfo]:
        return list(self._infos)

    def parents_of(self, info: FuncInfo) -> dict:
        return self._parents[info.path]

    def _own_nodes(self, fn: ast.AST):
        """Walk ``fn`` skipping nested function/lambda bodies."""
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, _FUNC_NODES + (ast.Lambda,)):
                stack.extend(ast.iter_child_nodes(node))

    def _analyze_direct(self, info: FuncInfo) -> None:
        parents = self._parents[info.path]
        for node in self._own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(node)
            if reason is not None:
                info.blocking_direct.append((node, reason))
            dotted = _dotted(node.func)
            bare = _callee_bare(node)
            if dotted == "os.fsync":
                info.calls_fsync = True
            if dotted in ("os.replace", "os.rename"):
                info.calls_replace = True
            if bare == "join":
                info.has_any_join = True
            if bare == "Process":
                info.spawn_sites.append(node)
            if bare == "open":
                mode = (node.args[1] if len(node.args) > 1
                        else _kw(node, "mode"))
                if (isinstance(mode, ast.Constant)
                        and isinstance(mode.value, str)
                        and mode.value.startswith(("w", "x"))):
                    info.write_opens.append(node)
            if bare in ("write_text", "write_bytes"):
                info.path_writes.append(node)
        acqs: list[Acquisition] = []
        for node in self._own_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                kind = _ctor_kind(value)
                if kind is None:
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    daemon_kw = _kw(value, "daemon")
                    acqs.append(Acquisition(
                        var=targets[0].id, kind=kind, call=value, stmt=node,
                        create=_is_true(_kw(value, "create")),
                        daemon=(True if _is_true(daemon_kw)
                                else (False if daemon_kw is not None
                                      else None)),
                    ))
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                kind = _ctor_kind(call)
                if kind in EAGER_KINDS:
                    # `open(...)` / `SharedMemory(...)` never bound: the
                    # handle is unreachable the moment it is created.
                    acqs.append(Acquisition(
                        var=None, kind=kind, call=call, stmt=node,
                        discarded=True,
                        create=_is_true(_kw(call, "create")),
                    ))
        for acq in acqs:
            if acq.var is not None:
                self._trace_var(info, acq, parents)
            self._classify_bulk(info, acq, parents)
        info.acquisitions = acqs

    def _analyze_helpers(self, info: FuncInfo) -> None:
        """One-level substitution of resource-returning local helpers."""
        parents = self._parents[info.path]
        extra: list[Acquisition] = []
        for node in self._own_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if not isinstance(value, ast.Call) or _ctor_kind(value):
                    continue
                helper = self._resource_helper(value, info)
                if helper is None:
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                names: list[str] = []
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    names = [targets[0].id]
                elif len(targets) == 1 and isinstance(targets[0], ast.Tuple):
                    names = [e.id for e in targets[0].elts
                             if isinstance(e, ast.Name)]
                for hk in sorted(helper.returned_kinds):
                    for name in names:
                        extra.append(Acquisition(
                            var=name, kind=hk, call=value, stmt=node,
                            started=helper.returns_started_thread,
                            from_helper=helper.qualname,
                        ))
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if _ctor_kind(call):
                    continue
                helper = self._resource_helper(call, info)
                if helper is not None and (
                    helper.returned_kinds & EAGER_KINDS
                    or helper.returns_started_thread
                ):
                    kinds = ",".join(sorted(helper.returned_kinds))
                    extra.append(Acquisition(
                        var=None, kind=kinds or "thread", call=call,
                        stmt=node, discarded=True,
                        started=helper.returns_started_thread,
                        from_helper=helper.qualname,
                    ))
        for acq in extra:
            if acq.var is not None:
                self._trace_var(info, acq, parents)
            self._classify_bulk(info, acq, parents)
        info.acquisitions.extend(extra)

    def _resource_helper(self, call: ast.Call, info: FuncInfo):
        """The resource-returning local helper this call invokes, if any."""
        target = self._resolve_callee(call, info)
        if target is not None and (target.returned_kinds
                                   or target.returns_started_thread):
            return target
        return None

    def _trace_var(self, info: FuncInfo, acq: Acquisition,
                   parents: dict) -> None:
        fn = info.node
        var = acq.var
        releasers = RELEASERS.get(acq.kind, frozenset())
        for node in self._own_nodes(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id == var:
                    attr = node.func.attr
                    if attr in releasers:
                        acq.releases.append(self._release(node, acq, fn,
                                                          parents, var))
                    elif attr == "start":
                        acq.started = True
                    continue  # other method use: neutral, not an escape
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
                    and node.value.id == var:
                if node.attr == "daemon":
                    # t.daemon = True before start()
                    stmt = _enclosing_stmt(node, parents)
                    if isinstance(stmt, ast.Assign) and _is_true(stmt.value):
                        acq.daemon = True
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.iter, ast.Name
            ) and node.iter.id == var:
                # `for h in handles:` + h.close()/h.unlink() releases the
                # collection bound to `handles` (helper-returned bulk).
                loop_var = (node.target.id
                            if isinstance(node.target, ast.Name) else None)
                if loop_var and any(
                    isinstance(c, ast.Call)
                    and isinstance(c.func, ast.Attribute)
                    and c.func.attr in releasers
                    and isinstance(c.func.value, ast.Name)
                    and c.func.value.id == loop_var
                    for b in node.body for c in ast.walk(b)
                ):
                    acq.releases.append(self._release(node, acq, fn,
                                                      parents, var))
                continue
            if isinstance(node, ast.Name) and node.id == var and isinstance(
                node.ctx, ast.Load
            ):
                if self._escapes(node, parents):
                    acq.escaped = True
        if acq.kind in WITH_RELEASED_KINDS:
            for node in self._own_nodes(fn):
                if isinstance(node, ast.With):
                    for item in node.items:
                        if isinstance(item.context_expr, ast.Name) \
                                and item.context_expr.id == var:
                            acq.releases.append(self._release(
                                node, acq, fn, parents, var))

    def _escapes(self, name: ast.Name, parents: dict) -> bool:
        parent = parents.get(name)
        # receiver of an attribute access (h.buf, h.close()): neutral
        if isinstance(parent, ast.Attribute) and parent.value is name:
            return False
        # (h,), [h], {..: h}, h if cond else .. -- look through one level
        if isinstance(parent, (ast.Tuple, ast.List, ast.Set, ast.Dict,
                               ast.IfExp, ast.Starred)):
            name, parent = parent, parents.get(parent)
        if isinstance(parent, (ast.Call, ast.keyword)):
            return True  # argument to any call transfers ownership
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Raise)):
            return True
        if isinstance(parent, ast.Assign) and parent.value is name:
            return True  # alias / attribute / subscript store
        if isinstance(parent, ast.Subscript):
            # d[h]: key use does not transfer; h[...] neither
            return False
        return False

    def _release(self, node: ast.AST, acq: Acquisition, fn: ast.AST,
                 parents: dict, var: str) -> Release:
        rel = Release(node=node, line=node.lineno,
                      method=getattr(getattr(node, "func", None), "attr",
                                     "for-loop"))
        cur = node
        while cur is not None and cur is not fn:
            parent = parents.get(cur)
            if isinstance(parent, ast.Try) and cur in parent.finalbody:
                try_node = parent
                in_try = any(
                    acq.stmt is s or any(acq.stmt is w for w in ast.walk(s))
                    for s in try_node.body
                )
                if in_try:
                    rel.covered_by_finally = True
                elif acq.stmt.lineno < try_node.lineno:
                    rel.finally_after_acq = True
                    rel.guard_try = try_node
                return rel
            cur = parent
        acq_arms = _branch_arms(acq.stmt, fn, parents)
        rel_stmt = _enclosing_stmt(node, parents) or node
        rel_arms = _branch_arms(rel_stmt, fn, parents, var=var)
        rel.conditional = not rel_arms.issubset(acq_arms)
        return rel

    def _classify_bulk(self, info: FuncInfo, acq: Acquisition,
                       parents: dict) -> None:
        if acq.kind not in EAGER_KINDS:
            return
        cur = acq.call
        loop = None
        while cur is not None and cur is not info.node:
            cur = parents.get(cur)
            if isinstance(cur, _LOOP_NODES + _COMP_NODES):
                loop = cur
                break
        if loop is None:
            return
        acq.bulk = True
        releasers = RELEASERS.get(acq.kind, frozenset())
        cur = loop
        while cur is not None and cur is not info.node:
            cur = parents.get(cur)
            if isinstance(cur, ast.Try):
                cleanup = list(cur.finalbody)
                for h in cur.handlers:
                    cleanup.extend(h.body)
                for stmt in cleanup:
                    for c in ast.walk(stmt):
                        if (isinstance(c, ast.Call)
                                and isinstance(c.func, ast.Attribute)
                                and c.func.attr in releasers):
                            acq.bulk_guarded = True
                            return
        # A helper-returned collection released by the caller inside a
        # try/finally also counts as guarded at the acquiring side when
        # the loop lives inside that same function's try.  (Handled
        # above; nothing more to do here.)

    def risky_between(self, info: FuncInfo, lo: int, hi: int,
                      exclude_receiver: str | None = None) -> bool:
        """Any call/raise/assert (a potential raise) on a line in (lo, hi)?

        ``exclude_receiver`` skips method calls on that name: used for
        process/thread handles, where ``h.start()`` raising means no OS
        state was created and there is nothing to leak.
        """
        for node in self._own_nodes(info.node):
            if not isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
                continue
            if not lo < getattr(node, "lineno", lo) < hi:
                continue
            if (exclude_receiver is not None
                    and isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == exclude_receiver):
                continue
            return True
        return False

    # .. locksets ......................................................

    def _find_locked_calls(self, info: FuncInfo) -> None:
        out: list[LockedCall] = []

        def visit_expr(node: ast.AST, held: frozenset) -> None:
            if isinstance(node, _FUNC_NODES + (ast.Lambda,)):
                return
            if isinstance(node, ast.Call) and held:
                out.append(LockedCall(call=node, held=held))
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    continue
                visit_expr(child, held)

        def visit_stmt_fields(stmt: ast.stmt, held: frozenset) -> None:
            if isinstance(stmt, _FUNC_NODES):
                return
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, list):
                    if value and all(isinstance(x, ast.stmt) for x in value):
                        visit_block(value, held)
                    else:
                        for item in value:
                            if isinstance(item, ast.ExceptHandler):
                                visit_block(item.body, held)
                            elif isinstance(item, ast.AST):
                                visit_expr(item, held)
                elif isinstance(value, ast.AST):
                    visit_expr(value, held)

        def visit_block(stmts: list, held: frozenset) -> None:
            span: set = set()
            for stmt in stmts:
                cur = held | frozenset(span)
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    texts = []
                    for item in stmt.items:
                        visit_expr(item.context_expr, cur)
                        text = _locklike(item.context_expr)
                        if text:
                            texts.append(text)
                    visit_block(stmt.body, cur | frozenset(texts))
                    continue
                if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call) \
                        and isinstance(stmt.value.func, ast.Attribute):
                    attr = stmt.value.func.attr
                    recv = _dotted(stmt.value.func.value)
                    if recv and any(h in recv.lower() for h in LOCKLIKE_HINTS):
                        if attr == "acquire":
                            span.add(recv)
                            continue
                        if attr == "release":
                            span.discard(recv)
                            continue
                visit_stmt_fields(stmt, cur)

        visit_block(list(info.node.body), frozenset())
        info.locked_calls = out

    # .. resource-returning helpers ....................................

    def _returned_resources(self, info: FuncInfo) -> None:
        kinds: set = set()
        started = False
        returned_names: set = set()
        for node in self._own_nodes(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        returned_names.add(sub.id)
                    elif isinstance(sub, ast.Call):
                        k = _ctor_kind(sub)
                        if k is not None:
                            kinds.add(k)
        for acq in info.acquisitions:
            if acq.var is None:
                continue
            direct = acq.var in returned_names
            via_container = False
            if not direct:
                # h appended to a local list that is itself returned
                for node in self._own_nodes(info.node):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in ("append", "add")
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id in returned_names
                            and any(isinstance(a, ast.Name) and a.id == acq.var
                                    for a in node.args)):
                        via_container = True
                        break
            if direct or via_container:
                kinds.add(acq.kind)
                if acq.kind == "thread" and acq.started:
                    started = True
        info.returned_kinds = frozenset(kinds)
        info.returns_started_thread = started

    # -- call-graph resolution -----------------------------------------

    def _hints(self, cand: FuncInfo) -> tuple:
        stem = cand.path.rsplit("/", 1)[-1]
        stem = stem[:-3] if stem.endswith(".py") else stem
        hints = [stem.lower()]
        if cand.class_name:
            hints.append(cand.class_name.lower().lstrip("_"))
        return tuple(hints)

    def _resolve_callee(self, call: ast.Call, info: FuncInfo) -> FuncInfo | None:
        bare = _callee_bare(call)
        if not bare:
            return None
        cands = self.functions.get(bare, [])
        if not cands:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            same_file = [c for c in cands if c.path == info.path]
            if len(same_file) == 1:
                return same_file[0]
            if len(cands) == 1 and bare not in GENERIC_NAMES:
                return cands[0]
            return None
        recv = _dotted(func.value)
        if recv == "self":
            own = [c for c in cands if c.path == info.path
                   and c.class_name == info.class_name]
            if len(own) == 1:
                return own[0]
            return None
        if bare not in GENERIC_NAMES:
            if len(cands) == 1:
                return cands[0]
            same_file = [c for c in cands if c.path == info.path]
            if len(same_file) == 1:
                return same_file[0]
            return None
        # Generic name (`get`, `put`, ...): require the receiver text to
        # name the defining module or class, so `self.cache.get` finds
        # ResultCache.get while `self._jobs.get` (a dict) finds nothing.
        low = recv.lower()
        hinted = [c for c in cands
                  if any(h and h in low for h in self._hints(c))]
        if len(hinted) == 1:
            return hinted[0]
        return None

    def _compute_bearing(self) -> dict:
        """``id(FuncInfo) -> reason`` for every blocking-bearing function."""
        bearing: dict[int, str] = {}
        for info in self._infos:
            if info.blocking_direct:
                _, reason = info.blocking_direct[0]
                bearing[id(info)] = reason
        changed = True
        while changed:
            changed = False
            for info in self._infos:
                if id(info) in bearing:
                    continue
                for node in self._own_nodes(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    target = self._resolve_callee(node, info)
                    if target is not None and id(target) in bearing:
                        bearing[id(info)] = (
                            f"calls {target.qualname}() which "
                            f"{bearing[id(target)]}"
                        )
                        changed = True
                        break
        return bearing

    def bearing_reason(self, target: FuncInfo) -> str | None:
        return self._bearing.get(id(target))

    def resolve(self, call: ast.Call, info: FuncInfo) -> FuncInfo | None:
        return self._resolve_callee(call, info)
