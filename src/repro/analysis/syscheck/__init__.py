"""sys-check: resource-lifecycle & process-safety analysis (RS rules).

The fourth analysis family.  Static side: RS001-RS007 abstractly
interpret the multi-process layers (``cluster/procs.py``,
``cluster/mpi_sim.py``, the service layer, resilience, the flight
recorder) and prove acquire/release discipline, shared-memory
ownership, lock/blocking separation, spawn safety, thread joins,
atomic durable writes and SIGKILL-window hygiene.  Dynamic side:
:class:`ResourceLedger`, the leak sanitizer the test suite wraps
around every cluster/service/chaos test.

Entry points mirror comm-check: ``check_paths`` / ``check_sources``
for the static pass, ``python -m repro.analysis --sys`` on the CLI.
"""

from .ledger import DEFAULT_KINDS, LeakError, ResourceLedger
from .model import DURABLE_WRITER_PATHS, RELEASERS, RESOURCE_CTORS, SYS_SCOPE
from .program import SysProgram
from .report import SysReport
from .rules import (
    SYS_REGISTRY,
    build_program,
    SysRule,
    check_paths,
    check_program,
    check_sources,
    register_sys_rule,
    registered_sys_rules,
)

__all__ = [
    "DEFAULT_KINDS",
    "DURABLE_WRITER_PATHS",
    "LeakError",
    "RELEASERS",
    "RESOURCE_CTORS",
    "ResourceLedger",
    "SYS_REGISTRY",
    "SYS_SCOPE",
    "SysProgram",
    "SysReport",
    "SysRule",
    "build_program",
    "check_paths",
    "check_program",
    "check_sources",
    "register_sys_rule",
    "registered_sys_rules",
]
