"""RS-series rules: resource lifecycle and process safety.

Each rule consumes the facts of a :class:`~repro.analysis.syscheck.
program.SysProgram` and emits :class:`~repro.analysis.lint.Violation`
records.  Findings honour the shared ``# lint: disable=RSxxx`` pragma
system; the rule catalogue lives in ``docs/analysis.md``.
"""

from __future__ import annotations

import ast

from ..lint import SourceFile, Violation, iter_python_files, path_matches
from .model import DURABLE_WRITER_PATHS, EAGER_KINDS, SYS_SCOPE
from .program import (
    FuncInfo,
    SysProgram,
    _blocking_reason,
    _callee_bare,
    _dotted,
    _kw,
)
from .report import SysReport

#: rule_id -> rule class
SYS_REGISTRY: dict[str, type] = {}


def register_sys_rule(cls):
    """Class decorator adding an RS rule to the registry."""
    SYS_REGISTRY[cls.rule_id] = cls
    return cls


def registered_sys_rules() -> list:
    """Instances of every registered RS rule, sorted by id."""
    return [SYS_REGISTRY[k]() for k in sorted(SYS_REGISTRY)]


class SysRule:
    """Base class of the RS-series whole-program rules."""

    rule_id: str = "RS000"
    name: str = ""
    description: str = ""
    #: path patterns findings are restricted to (lint.path_matches)
    paths: tuple = SYS_SCOPE

    def in_scope(self, path: str) -> bool:
        return any(path_matches(path, p) for p in self.paths)

    def scoped(self, program: SysProgram) -> list[FuncInfo]:
        return [i for i in program.infos() if self.in_scope(i.path)]

    def violation(self, info: FuncInfo, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )

    def check(self, program: SysProgram) -> list[Violation]:
        raise NotImplementedError


@register_sys_rule
class ReleaseOnAllPaths(SysRule):
    """RS001: a resource handle must be released on every path."""

    rule_id = "RS001"
    name = "release-on-all-paths"
    description = (
        "SharedMemory/file/Process/Thread handles must be closed, "
        "unlinked or joined on every control-flow path (with, "
        "try/finally, or unconditional straight-line release)."
    )

    def check(self, program: SysProgram) -> list[Violation]:
        out: list[Violation] = []
        for info in self.scoped(program):
            for acq in info.acquisitions:
                out.extend(self._check_acq(program, info, acq))
        return out

    def _check_acq(self, program, info, acq) -> list[Violation]:
        out = []
        what = (f"the {acq.kind} from {acq.from_helper}()"
                if acq.from_helper else f"this {acq.kind}")
        if acq.discarded:
            origin = (f"{acq.from_helper}() returns a live {acq.kind}"
                      if acq.from_helper
                      else f"a {acq.kind} handle is created")
            out.append(self.violation(
                info, acq.call,
                f"{origin} and discarded at the call site: the handle "
                f"can never be released -- bind it and release on every "
                f"path",
            ))
            return out
        if acq.bulk and not acq.bulk_guarded:
            out.append(self.violation(
                info, acq.call,
                f"bulk {acq.kind} acquisition in a loop is not "
                f"exception-safe: a mid-loop failure leaks every handle "
                f"acquired so far -- wrap the loop in try/except and "
                f"release the partial set",
            ))
        if acq.escaped:
            return out  # ownership transferred (stored/returned/passed)
        if acq.kind in ("process", "thread") and not acq.started:
            return out  # no OS state before .start()
        if not acq.releases:
            out.append(self.violation(
                info, acq.call,
                f"{what} acquired here is never released in "
                f"{info.qualname}() on any path",
            ))
            return out
        if any(r.covered_by_finally for r in acq.releases):
            return out
        # Method calls on a process/thread handle (h.start()) raising
        # mean no OS state exists yet: not a leak window.
        excl = acq.var if acq.kind not in EAGER_KINDS else None
        fin = next((r for r in acq.releases if r.finally_after_acq), None)
        if fin is not None:
            lo = getattr(acq.stmt, "end_lineno", acq.stmt.lineno)
            if program.risky_between(info, lo, fin.guard_try.lineno,
                                     exclude_receiver=excl):
                out.append(self.violation(
                    info, acq.call,
                    f"{what} is acquired before the try/finally that "
                    f"releases it (line {fin.guard_try.lineno}): an "
                    f"exception in between leaks the handle -- acquire "
                    f"inside the try block",
                ))
            return out
        unconditional = [r for r in acq.releases if not r.conditional]
        if not unconditional:
            out.append(self.violation(
                info, acq.call,
                f"{what} is released only on some paths (line(s) "
                f"{', '.join(str(r.line) for r in acq.releases)}): "
                f"branches that skip the release leak the handle",
            ))
            return out
        first = min(unconditional, key=lambda r: r.line)
        lo = getattr(acq.stmt, "end_lineno", acq.stmt.lineno)
        if program.risky_between(info, lo, first.line,
                                 exclude_receiver=excl):
            out.append(self.violation(
                info, acq.call,
                f"{what} is released at line {first.line} but a call "
                f"in between can raise and leak the handle -- use "
                f"try/finally or a with block",
            ))
        return out


@register_sys_rule
class SegmentOwnership(SysRule):
    """RS002: shared_memory create/unlink ownership discipline."""

    rule_id = "RS002"
    name = "segment-ownership"
    description = (
        "The side that creates a shared_memory segment (create=True) "
        "must also unlink it; attach-only sides must never unlink."
    )

    def check(self, program: SysProgram) -> list[Violation]:
        out: list[Violation] = []
        for path, src in program.sources.items():
            if not self.in_scope(path):
                continue
            creates = program.shm_creates.get(path, [])
            attaches = program.shm_attaches.get(path, [])
            unlinks = program.shm_unlinks.get(path, [])
            if creates and not unlinks:
                for node in creates:
                    out.append(Violation(
                        path=path, line=node.lineno, col=node.col_offset,
                        rule=self.rule_id,
                        message=(
                            "SharedMemory(create=True) without any "
                            ".unlink() in this module: the segment "
                            "outlives every process of the world"
                        ),
                    ))
            if attaches and not creates and unlinks:
                for node in unlinks:
                    out.append(Violation(
                        path=path, line=node.lineno, col=node.col_offset,
                        rule=self.rule_id,
                        message=(
                            "attach-only module calls .unlink(): only "
                            "the creating side owns segment removal "
                            "(double-unlink races the owner)"
                        ),
                    ))
        return out


@register_sys_rule
class LockAcrossBlocking(SysRule):
    """RS003: no blocking call while holding a lock."""

    rule_id = "RS003"
    name = "lock-across-blocking"
    description = (
        "A lock held across join/recv/sleep/queue-get/file IO "
        "serializes every other thread behind one slow operation "
        "(and deadlocks if the blocked peer needs the same lock). "
        "Waiting on the held condition itself is exempt."
    )

    def check(self, program: SysProgram) -> list[Violation]:
        out: list[Violation] = []
        for info in self.scoped(program):
            for lc in info.locked_calls:
                held = ", ".join(sorted(lc.held))
                reason = _blocking_reason(lc.call, lc.held)
                if reason is not None:
                    out.append(self.violation(
                        info, lc.call,
                        f"blocking call under lock ({held}): {reason} "
                        f"-- move it outside the locked region",
                    ))
                    continue
                target = program.resolve(lc.call, info)
                if target is None:
                    continue
                bearing = program.bearing_reason(target)
                if bearing is not None:
                    out.append(self.violation(
                        info, lc.call,
                        f"{target.qualname}() blocks while {held} is "
                        f"held: {bearing} -- move the call outside the "
                        f"locked region",
                    ))
        return out


@register_sys_rule
class SpawnSafety(SysRule):
    """RS004: what crosses the spawn boundary must survive pickling."""

    rule_id = "RS004"
    name = "spawn-safety"
    description = (
        "Process targets/args must be module-level and picklable; "
        "module-level mutable state read in a spawn target is copied "
        "per child and silently diverges."
    )

    def check(self, program: SysProgram) -> list[Violation]:
        out: list[Violation] = []
        for info in self.scoped(program):
            for call in info.spawn_sites:
                out.extend(self._check_spawn(program, info, call))
        return out

    def _check_spawn(self, program, info, call) -> list[Violation]:
        out = []
        target = _kw(call, "target")
        if isinstance(target, ast.Lambda):
            out.append(self.violation(
                info, call,
                "lambda spawn target cannot cross the process boundary "
                "(not picklable under the spawn start method)",
            ))
        elif isinstance(target, (ast.Name, ast.Attribute)):
            dotted = _dotted(target)
            bare = dotted.rsplit(".", 1)[-1]
            cands = [c for c in program.functions.get(bare, [])
                     if c.path == info.path]
            tinfo = cands[0] if len(cands) == 1 else None
            if dotted.startswith("self."):
                out.append(self.violation(
                    info, call,
                    f"bound-method spawn target {dotted} pickles the "
                    f"whole owning object across the process boundary",
                ))
            elif tinfo is not None and not tinfo.module_level:
                out.append(self.violation(
                    info, call,
                    f"nested function {bare}() is not picklable under "
                    f"the spawn start method -- hoist it to module level",
                ))
            elif tinfo is not None:
                mutables = program.module_mutables.get(tinfo.path, set())
                read = sorted({
                    n.id for n in ast.walk(tinfo.node)
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
                    and n.id in mutables
                })
                if read:
                    out.append(self.violation(
                        info, call,
                        f"spawn target {bare}() reads module-level "
                        f"mutable state ({', '.join(read)}): each child "
                        f"gets a private copy that silently diverges "
                        f"from the parent",
                    ))
        args = _kw(call, "args")
        if isinstance(args, (ast.Tuple, ast.List)) and any(
            isinstance(e, ast.Lambda) for e in args.elts
        ):
            out.append(self.violation(
                info, call,
                "lambda in spawn args cannot cross the process boundary "
                "(not picklable)",
            ))
        return out


@register_sys_rule
class ThreadJoinOnShutdown(SysRule):
    """RS005: non-daemon threads need a join on the shutdown path."""

    rule_id = "RS005"
    name = "thread-join-on-shutdown"
    description = (
        "A non-daemon thread without a join keeps the interpreter "
        "alive past shutdown; a fire-and-forget thread can touch "
        "freed resources after the owner exits."
    )

    def check(self, program: SysProgram) -> list[Violation]:
        out: list[Violation] = []
        for info in self.scoped(program):
            bound_ctors = {id(a.call) for a in info.acquisitions
                           if a.kind == "thread"}
            for acq in info.acquisitions:
                if acq.kind != "thread" or acq.from_helper is not None:
                    continue
                if acq.daemon is True or acq.escaped:
                    continue
                if not any(r.method == "join" for r in acq.releases):
                    out.append(self.violation(
                        info, acq.call,
                        f"non-daemon thread {acq.var!r} is never joined "
                        f"in {info.qualname}(): it outlives every "
                        f"shutdown path -- join it (or mark daemon=True "
                        f"and join before releasing shared state)",
                    ))
            for node in program._own_nodes(info.node):
                if (isinstance(node, ast.Call)
                        and _callee_bare(node) == "Thread"
                        and id(node) not in bound_ctors):
                    daemon = _kw(node, "daemon")
                    if (isinstance(daemon, ast.Constant)
                            and daemon.value is True):
                        continue
                    if not info.has_any_join:
                        out.append(self.violation(
                            info, node,
                            f"fire-and-forget non-daemon thread in "
                            f"{info.qualname}() has no join on any "
                            f"shutdown path",
                        ))
        return out


@register_sys_rule
class AtomicDurableWrite(SysRule):
    """RS006: checkpoint/cache/manifest writers must be atomic."""

    rule_id = "RS006"
    name = "atomic-durable-write"
    description = (
        "Durable state (checkpoints, result cache, kernel manifest, "
        "baselines) must be written tmp + fsync + os.replace so a "
        "crash mid-write can never leave a torn file behind."
    )
    paths = DURABLE_WRITER_PATHS

    def check(self, program: SysProgram) -> list[Violation]:
        out: list[Violation] = []
        for info in self.scoped(program):
            for call in info.write_opens:
                if not info.calls_replace:
                    out.append(self.violation(
                        info, call,
                        f"non-atomic durable write in {info.qualname}(): "
                        f"open(..., 'w') without os.replace -- write a "
                        f"tmp file, fsync, then os.replace over the "
                        f"final path",
                    ))
                elif not info.calls_fsync:
                    out.append(self.violation(
                        info, call,
                        f"durable write in {info.qualname}() renames "
                        f"without os.fsync: the data can vanish on "
                        f"power loss after the rename is visible",
                    ))
            for call in info.path_writes:
                out.append(self.violation(
                    info, call,
                    f"Path.write_text/write_bytes in {info.qualname}() "
                    f"is non-atomic: a crash mid-write leaves a torn "
                    f"file -- write tmp + fsync + os.replace",
                ))
        return out


@register_sys_rule
class KillWindowHazard(SysRule):
    """RS007: SIGKILL-exposed code must not own persistent state."""

    rule_id = "RS007"
    name = "kill-window-hazard"
    description = (
        "Code running in a kill-supervised child (a Process spawn "
        "target) can be SIGKILLed between any heartbeat publish and "
        "the parent's kill watermark: OS-persistent resources it "
        "creates (named segments, non-atomic files) are orphaned."
    )

    def check(self, program: SysProgram) -> list[Violation]:
        exposed: dict[int, FuncInfo] = {}
        for info in program.infos():
            for call in info.spawn_sites:
                target = _kw(call, "target")
                if not isinstance(target, (ast.Name, ast.Attribute)):
                    continue
                bare = _dotted(target).rsplit(".", 1)[-1]
                cands = [c for c in program.functions.get(bare, [])
                         if c.path == info.path]
                if len(cands) != 1:
                    continue
                tinfo = cands[0]
                exposed[id(tinfo)] = tinfo
                # one level of same-file callees
                for node in program._own_nodes(tinfo.node):
                    if isinstance(node, ast.Call):
                        callee = program.resolve(node, tinfo)
                        if callee is not None and callee.path == tinfo.path:
                            exposed[id(callee)] = callee
        out: list[Violation] = []
        for info in exposed.values():
            if not self.in_scope(info.path):
                continue
            for acq in info.acquisitions:
                if acq.kind == "segment" and acq.create:
                    out.append(self.violation(
                        info, acq.call,
                        f"{info.qualname}() runs in a kill-supervised "
                        f"child but creates a named segment: a SIGKILL "
                        f"between the heartbeat publish and the kill "
                        f"watermark orphans it -- create in the parent, "
                        f"attach in the child",
                    ))
            if not info.calls_replace:
                for call in info.write_opens:
                    out.append(self.violation(
                        info, call,
                        f"{info.qualname}() runs in a kill-supervised "
                        f"child and writes a file non-atomically: a "
                        f"SIGKILL mid-write leaves a torn file -- use "
                        f"tmp + fsync + os.replace (the tmp is "
                        f"sweepable after the kill)",
                    ))
        return out


# -- entry points -------------------------------------------------------


def build_program(sources: dict[str, SourceFile]) -> SysProgram:
    """Whole-program resource/blocking model over parsed sources."""
    return SysProgram(sources)


def check_program(program: SysProgram,
                  rules: list | None = None) -> SysReport:
    """Run the RS rules over a built program (pragmas applied)."""
    rules = registered_sys_rules() if rules is None else rules
    report = SysReport()
    sites = [i for i in program.infos()
             if any(r.in_scope(i.path) for r in rules)]
    report.checks_run = len(sites) * len(rules)
    for rule in rules:
        for v in rule.check(program):
            src = program.sources.get(v.path)
            if src is not None and src.disabled(v.rule, v.line):
                continue
            report.violations.append(v)
    report.violations.sort()
    return report


def check_sources(sources: dict[str, str]) -> SysReport:
    """Analyze in-memory sources (``{path: text}``)."""
    parsed = {p: SourceFile(p, t) for p, t in sources.items()}
    return check_program(build_program(parsed))


def check_paths(paths: list) -> SysReport:
    """Analyze every python file under ``paths``."""
    sources: dict[str, SourceFile] = {}
    for path in iter_python_files(paths):
        text = path.read_text(encoding="utf-8")
        sources[str(path)] = SourceFile(str(path), text)
    return check_program(build_program(sources))
