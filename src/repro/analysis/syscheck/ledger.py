"""Runtime leak sanitizer: the dynamic counterpart of the RS rules.

A :class:`ResourceLedger` watches the four OS resource kinds the
multi-process layers can leak -- shared-memory segments, child
processes, threads and file descriptors -- and asserts that a test
left none behind.  Two modes compose:

* **Explicit ledger**: ``register(kind, handle)`` / ``close(kind,
  handle)`` pairs, for library code or tests that want per-handle
  accounting (``leaked()`` lists the open entries).
* **Snapshot sanitizer**: ``begin()`` records the ambient thread /
  child-process / ``/dev/shm`` / fd population; ``assert_clean()``
  re-snapshots (with a polling grace window for wind-down: daemon
  threads parking, children being reaped) and raises
  :class:`LeakError` listing anything new that survived.

The pytest fixture in ``tests/conftest.py`` wraps the snapshot mode
around every cluster/service/chaos test, which is how the acceptance
bar "zero leaked segments/processes/threads" is enforced at runtime
(the static RS rules prove the same discipline at review time).
"""

from __future__ import annotations

import gc
import os
import threading
import time

#: default kinds asserted by the pytest fixture; fds are opt-in (the
#: test harness itself churns fds, so they need explicit baselining).
DEFAULT_KINDS = ("segment", "process", "thread")

_SHM_DIR = "/dev/shm"


class LeakError(AssertionError):
    """A watched resource survived the test that created it."""


def _live_threads() -> dict[int, str]:
    return {
        t.ident: f"thread {t.name!r} (daemon={t.daemon})"
        for t in threading.enumerate()
        if t.ident is not None and t.is_alive()
    }


def _live_children() -> dict[int, str]:
    import multiprocessing

    # active_children() also reaps finished children.
    return {
        p.pid: f"process {p.name!r} (pid {p.pid})"
        for p in multiprocessing.active_children()
        if p.pid is not None
    }


def _live_segments() -> dict[str, str]:
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return {}
    return {n: f"shm segment {n!r}" for n in names}


def _live_fds() -> dict[int, str]:
    try:
        fds = os.listdir("/proc/self/fd")
    except OSError:
        return {}
    out = {}
    for fd in fds:
        try:
            target = os.readlink(f"/proc/self/fd/{fd}")
        except OSError:
            continue
        out[int(fd)] = f"fd {fd} -> {target}"
    return out


_SNAPSHOTTERS = {
    "thread": _live_threads,
    "process": _live_children,
    "segment": _live_segments,
    "fd": _live_fds,
}


class ResourceLedger:
    """Register/close accounting plus a snapshot leak sanitizer."""

    KINDS = ("segment", "process", "thread", "fd")

    def __init__(self, include_fds: bool = False):
        self.include_fds = include_fds
        self._open: dict[str, dict[int, str]] = {k: {} for k in self.KINDS}
        self._closed_counts: dict[str, int] = {k: 0 for k in self.KINDS}
        self._baseline: dict[str, dict] | None = None

    # -- explicit ledger ------------------------------------------------

    def register(self, kind: str, handle, label: str | None = None):
        """Track a live handle; returns it for chaining."""
        if kind not in self.KINDS:
            raise ValueError(f"unknown resource kind {kind!r}")
        self._open[kind][id(handle)] = label or repr(handle)
        return handle

    def close(self, kind: str, handle) -> None:
        """Mark a tracked handle released (idempotent)."""
        if kind not in self.KINDS:
            raise ValueError(f"unknown resource kind {kind!r}")
        if self._open[kind].pop(id(handle), None) is not None:
            self._closed_counts[kind] += 1

    def live(self, kind: str | None = None) -> dict[str, list]:
        """Labels of still-open explicit registrations, by kind."""
        kinds = (kind,) if kind else self.KINDS
        return {k: sorted(self._open[k].values()) for k in kinds}

    def leaked(self) -> list[str]:
        """Flat list of still-open explicit registrations."""
        return [
            f"{kind}: {label}"
            for kind in self.KINDS
            for label in sorted(self._open[kind].values())
        ]

    # -- snapshot sanitizer ----------------------------------------------

    def _kinds(self, kinds) -> tuple:
        if kinds is not None:
            return tuple(kinds)
        if self.include_fds:
            return DEFAULT_KINDS + ("fd",)
        return DEFAULT_KINDS

    def begin(self, kinds=None) -> None:
        """Record the ambient resource population as the baseline."""
        self._baseline = {
            k: _SNAPSHOTTERS[k]() for k in self._kinds(kinds)
        }

    def check(self, grace: float = 5.0, kinds=None) -> list[str]:
        """New-since-baseline resources still live after ``grace``.

        Polls (gc + child reaping between probes) so ordinary wind-down
        -- a daemon thread parking, a reaped child -- never reports;
        only resources that *stay* alive for the whole window do.
        """
        if self._baseline is None:
            raise RuntimeError("call begin() before check()")
        kinds = [k for k in self._kinds(kinds) if k in self._baseline]
        deadline = time.monotonic() + grace
        while True:
            leaks = []
            for kind in kinds:
                now = _SNAPSHOTTERS[kind]()
                for key, label in now.items():
                    if key not in self._baseline[kind]:
                        leaks.append(f"{kind}: {label}")
            leaks.extend(self.leaked())
            if not leaks or time.monotonic() >= deadline:
                return sorted(leaks)
            gc.collect()
            time.sleep(0.05)

    def assert_clean(self, grace: float = 5.0, kinds=None) -> None:
        """Raise :class:`LeakError` if anything new is still live."""
        leaks = self.check(grace=grace, kinds=kinds)
        if leaks:
            raise LeakError(
                "leaked resources survived the watched region:\n  "
                + "\n  ".join(leaks)
            )

    # -- context manager sugar --------------------------------------------

    def __enter__(self) -> "ResourceLedger":
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Only assert on the success path: a failing test should report
        # its own error, not a secondary leak report.
        if exc_type is None:
            self.assert_clean()
