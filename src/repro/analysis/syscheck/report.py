"""Report format of the resource-lifecycle analysis family.

The static sys-check (:mod:`repro.analysis.syscheck.rules`) and the
dynamic leak sanitizer (:mod:`repro.analysis.syscheck.ledger`) emit
:class:`repro.analysis.lint.Violation` records under RS-series rule ids
and accumulate them in a :class:`SysReport` -- the same
``file:line:col: RULE message`` lines on the CLI, the same JSON payload
in the CI artifact, and one ``summary()`` string on the run scorecard,
regardless of which pass produced the finding.

Rule-id convention: ``RS0xx`` are static (whole-program) findings,
``RS1xx`` are dynamic (runtime ledger) findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lint import Violation


@dataclass
class SysReport:
    """Accumulated resource-lifecycle findings of one analysis."""

    violations: list[Violation] = field(default_factory=list)
    checks_run: int = 0

    def __len__(self) -> int:
        return len(self.violations)

    def by_rule(self) -> dict[str, int]:
        """Returns violation counts keyed by RS rule id."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def summary(self) -> str:
        """Returns a one-line summary suitable for scorecards/CLI."""
        if not self.violations:
            return f"syscheck: clean ({self.checks_run} checks)"
        parts = ", ".join(f"{k}={n}" for k, n in sorted(self.by_rule().items()))
        return (
            f"syscheck: {len(self.violations)} finding(s) in "
            f"{self.checks_run} checks ({parts})"
        )

    def to_dict(self) -> dict:
        """Returns a JSON-serializable payload (the CI report artifact)."""
        return {
            "checks_run": self.checks_run,
            "findings": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule,
                    "message": v.message,
                }
                for v in sorted(self.violations)
            ],
            "by_rule": self.by_rule(),
        }

    @classmethod
    def merged(cls, reports: list["SysReport"]) -> "SysReport":
        """Returns the union of several reports."""
        out = cls()
        for r in reports:
            out.violations.extend(r.violations)
            out.checks_run += r.checks_run
        return out
