"""Resource vocabulary of the sys-check analysis.

One place answers "what is a resource, what releases it, what blocks":
the RS rules (:mod:`repro.analysis.syscheck.rules`) and the program
builder (:mod:`repro.analysis.syscheck.program`) consume these tables
instead of hard-coding call names, so proving a new resource type is a
table edit plus a fixture test (see ``docs/analysis.md``).
"""

from __future__ import annotations

#: Constructor bare-name -> resource kind.  The name is matched against
#: the called function's last path component (``shared_memory.
#: SharedMemory`` and a bare ``SharedMemory`` both match).
RESOURCE_CTORS: dict[str, str] = {
    "SharedMemory": "segment",
    "Process": "process",
    "Thread": "thread",
    "open": "file",
}

#: Method names that release a handle of each kind.
RELEASERS: dict[str, frozenset] = {
    "segment": frozenset({"close", "unlink"}),
    "process": frozenset({"join", "terminate", "kill"}),
    "thread": frozenset({"join"}),
    "file": frozenset({"close"}),
}

#: Kinds whose handle is an OS resource the moment the constructor
#: returns.  ``Process``/``Thread`` objects only pin OS state after
#: ``.start()`` -- RS001 tracks those lazily (post-start) and the bulk
#: loop check skips them.
EAGER_KINDS = frozenset({"segment", "file"})

#: Kinds released by ``with`` context exit.
WITH_RELEASED_KINDS = frozenset({"file"})

#: Attribute names that block the calling thread unconditionally.
#: ``join`` carries a string/path exclusion in the program builder
#: (``", ".join`` / ``os.path.join`` are not thread joins).
BLOCKING_ATTRS = frozenset({
    "join", "join_thread", "recv", "recv_bytes", "accept", "select",
})

#: Attribute names that block when the receiver is an event/condition;
#: waiting on the *held* lock itself (``with cv: cv.wait()``) releases
#: it and is exempt.
WAIT_ATTRS = frozenset({"wait", "wait_for"})

#: ``.get(...)`` blocks only on queue-like receivers (``get_nowait``
#: never does); the receiver text must end with one of these.
QUEUE_RECEIVER_SUFFIXES = ("q", "queue")

#: Bare/dotted call names that are blocking IO primitives.
BLOCKING_CALLS = frozenset({
    "open", "sleep", "time.sleep", "os.fsync", "os.replace", "os.rename",
    "select.select",
})

#: Attribute names that are file IO on pathlib handles.
BLOCKING_PATH_IO = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
})

#: ``with`` expressions whose source text contains one of these
#: substrings are treated as lock acquisitions (lockset heuristic
#: shared with :mod:`repro.analysis.concurrency.race`).
LOCKLIKE_HINTS = ("lock", "mutex", "_cv", "cond")

#: Method names too generic to resolve through the call graph by name
#: alone -- a call-site edge for one of these additionally needs the
#: receiver text to mention the defining module or class (so
#: ``self.cache.get`` resolves to ``ResultCache.get`` while
#: ``self._jobs.get`` -- a dict -- resolves to nothing).
GENERIC_NAMES = frozenset({
    "get", "put", "read", "write", "close", "join", "open", "send",
    "recv", "pop", "update", "append", "extend", "clear", "flush",
    "wait", "start", "stop", "run", "copy", "add", "remove", "acquire",
    "release", "submit", "result", "info", "warn", "error", "debug",
    "fire", "next", "items", "keys", "values", "format", "drain",
    "key", "snapshot",
})

#: Path patterns (``repro.analysis.lint.path_matches`` syntax) the RS
#: rules apply to by default: the multi-process layers.  Files outside
#: the scope still feed the whole-program call graph (cross-file
#: blocking-bearing resolution) but never produce findings.
SYS_SCOPE = (
    "cluster/",
    "service/",
    "resilience/",
    "telemetry/flight.py",
)

#: Modules that persist campaign state and must write atomically
#: (tmp + fsync + ``os.replace``); the RS006 scope.
DURABLE_WRITER_PATHS = (
    "cluster/checkpoint.py",
    "service/cache.py",
    "perfcheck/manifest.py",
    "validation/baselines.py",
)
