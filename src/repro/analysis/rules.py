"""The ``cubism-lint`` rule catalogue (CL001..CL012).

Each rule encodes one contract the paper's solver design depends on;
the docstrings below are the normative description (also surfaced by
``python -m repro.analysis --list-rules``).  Path scopes are the
defaults tuned to this repository -- override them through
:class:`repro.analysis.lint.LintConfig`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .lint import Rule, SourceFile, Violation, register_rule

#: Quantity-dtype constants that code must reference instead of raw
#: numpy dtypes (defined in :mod:`repro.physics.state`).
DTYPE_CONSTANTS = ("STORAGE_DTYPE", "COMPUTE_DTYPE")

#: Attribute names of raw numpy float dtypes covered by CL001.
_RAW_FLOAT_ATTRS = {"float32", "float64", "single", "double", "half", "float16"}

#: Dtype spellings that indicate a downcast on a compute path (CL003).
_LOWER_PRECISION = {"float32", "single", "half", "float16", "STORAGE_DTYPE"}

#: Ghost-width literals that must be derived from GHOSTS (CL002).
_GHOST_LITERALS = {3, 6}

#: Docstring tokens accepted as return-contract documentation (CL006).
_RETURN_DOC_RE = re.compile(r"(?i)\breturn|shape|dtype|->")

#: Logging-ish call names that make a broad handler acceptable (CL005).
_LOG_CALLS = {
    "warn", "warning", "error", "exception", "critical", "debug",
    "info", "log", "print",
}


def _is_np_attr(node: ast.AST, attrs: set[str]) -> bool:
    """Is ``node`` an ``np.<attr>`` / ``numpy.<attr>`` access in ``attrs``?"""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@register_rule
class NoRawFloatDtypes(Rule):
    """CL001: no raw ``np.float32`` / ``np.float64`` dtype literals.

    Storage/compute precision is a single global contract
    (``STORAGE_DTYPE`` / ``COMPUTE_DTYPE`` in ``repro.physics.state``,
    paper Section 5's mixed-precision scheme); naming the numpy dtype
    inline re-decides that contract locally and is how silent downcasts
    are born.  Scope: solver layers; ``compression/`` and ``sim/``
    diagnostics are exempt by configuration.
    """

    rule_id = "CL001"
    name = "raw-float-dtype"
    description = (
        "use STORAGE_DTYPE/COMPUTE_DTYPE from repro.physics.state instead "
        "of raw np.float32/np.float64"
    )
    default_paths = ("core/", "node/", "cluster/", "physics/", "repro/cli.py")

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if _is_np_attr(node, _RAW_FLOAT_ATTRS):
                yield self.violation(
                    source,
                    node,
                    f"raw dtype np.{node.attr}; use "
                    "STORAGE_DTYPE/COMPUTE_DTYPE from repro.physics.state",
                )


@register_rule
class NoHardcodedGhostWidth(Rule):
    """CL002: no hard-coded ghost widths in stencil slicing.

    The WENO5 stencil needs exactly ``GHOSTS`` (3) ghost cells per side
    and ``2 * GHOSTS`` (6) of padding; slicing with the literals keeps
    working right up until someone changes the reconstruction order.
    Slice bounds in ``core/`` and ``node/`` must derive from ``GHOSTS``.
    """

    rule_id = "CL002"
    name = "hardcoded-ghost-width"
    description = "stencil slice bounds must derive from GHOSTS, not 3/6"
    default_paths = ("core/", "node/")

    @staticmethod
    def _ghost_literal(bound: ast.expr | None) -> ast.Constant | None:
        """A slice bound that is literally +/-3 or +/-6, else ``None``."""
        node = bound
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        if isinstance(node, ast.Constant) and node.value in _GHOST_LITERALS:
            return node
        return None

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Subscript):
                continue
            slices = (
                node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
            )
            for sl in slices:
                if not isinstance(sl, ast.Slice):
                    continue
                for bound in (sl.lower, sl.upper):
                    lit = self._ghost_literal(bound)
                    if lit is not None:
                        yield self.violation(
                            source,
                            lit,
                            f"hard-coded ghost width {lit.value} in slice; "
                            "derive it from GHOSTS",
                        )


@register_rule
class NoComputePathDowncast(Rule):
    """CL003: no ``.astype`` toward lower precision on compute paths.

    Kernels convert storage blocks to ``COMPUTE_DTYPE`` once on load and
    down-cast once on the block store (``soa_to_aos`` / in-place
    assignment).  An ``.astype(np.float32)`` in the middle of a kernel
    silently truncates the mixed-precision scheme -- the dominant source
    of wrong-but-plausible results reported by related solvers.
    """

    rule_id = "CL003"
    name = "compute-path-downcast"
    description = "kernels must not .astype() toward lower precision"
    default_paths = ("core/kernels.py", "physics/")

    @staticmethod
    def _is_lower_precision(arg: ast.expr) -> bool:
        if isinstance(arg, ast.Constant) and arg.value in ("float32", "f4", "float16"):
            return True
        if isinstance(arg, ast.Name) and arg.id == "STORAGE_DTYPE":
            return True
        return _is_np_attr(arg, {"float32", "single", "half", "float16"})

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                continue
            args = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg == "dtype"
            ]
            for arg in args:
                if self._is_lower_precision(arg):
                    yield self.violation(
                        source,
                        node,
                        "downcast .astype() on a compute path; keep "
                        "COMPUTE_DTYPE and down-convert only at the block "
                        "storage write",
                    )


@register_rule
class NoMutableDefaults(Rule):
    """CL004: no mutable default arguments.

    A ``def f(x=[])`` default is shared across calls; in a long-running
    campaign server that is cross-request state leakage.
    """

    rule_id = "CL004"
    name = "mutable-default"
    description = "function defaults must not be mutable (list/dict/set)"

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for d in defaults:
                if self._is_mutable(d):
                    yield self.violation(
                        source,
                        d,
                        f"mutable default argument in {node.name}(); use "
                        "None and create inside the function",
                    )


@register_rule
class NoSilentBroadExcept(Rule):
    """CL005: no bare ``except:`` or silent ``except Exception``.

    A production driver serving many campaign runs must never eat a
    numerics error silently; broad handlers are allowed only when they
    re-raise or log/record what they caught.
    """

    rule_id = "CL005"
    name = "silent-broad-except"
    description = "bare/broad except must re-raise or log"

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        t = handler.type
        if t is None:
            return True
        names = t.elts if isinstance(t, ast.Tuple) else [t]
        for n in names:
            if isinstance(n, ast.Name) and n.id in ("Exception", "BaseException"):
                return True
        return False

    @staticmethod
    def _handles_visibly(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                fn = node.func
                name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", "")
                if name in _LOG_CALLS:
                    return True
        return False

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and not self._handles_visibly(node):
                kind = "bare except" if node.type is None else "broad except"
                yield self.violation(
                    source,
                    node,
                    f"{kind} without re-raise or logging hides numerics "
                    "failures; narrow it or handle visibly",
                )


@register_rule
class ReturnContractDocumented(Rule):
    """CL006: public kernel-layer functions document their return contract.

    Every public module-level function in ``physics/`` and ``core/``
    that returns a value must say *what* comes back -- shape, dtype or
    an explicit "Returns ..." -- in its docstring.  These are the
    functions whose array contracts the three solver layers are built
    on; an undocumented return shape is an interface bug waiting for a
    refactor.
    """

    rule_id = "CL006"
    name = "undocumented-return-contract"
    description = (
        "public physics/core functions must document return shape/dtype"
    )
    default_paths = ("physics/", "core/")

    @staticmethod
    def _returns_value(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Does the function itself (not nested defs) return a value?"""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(node, ast.Return) and node.value is not None:
                if not (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                ):
                    return True
            stack.extend(ast.iter_child_nodes(node))
        return False

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in source.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not self._returns_value(node):
                continue
            doc = ast.get_docstring(node)
            if doc is None or not _RETURN_DOC_RE.search(doc):
                yield self.violation(
                    source,
                    node,
                    f"public function {node.name}() returns a value but its "
                    "docstring documents no return shape/dtype contract",
                )


@register_rule
class NoUninitializedRead(Rule):
    """CL007: ``np.empty`` arrays must be written before they are read.

    ``np.empty`` hands back whatever bytes the allocator had; reading it
    before full assignment is a non-deterministic-garbage hazard.  The
    check is a conservative first-use analysis: after
    ``x = np.empty(...)`` the first reference to ``x`` must be a store
    (``x[...] = ``, an ``out=x`` keyword, or passing ``x`` to a filling
    routine) -- an arithmetic / reduction / return use first is flagged.
    """

    rule_id = "CL007"
    name = "uninitialized-read"
    description = "np.empty result read before assignment"

    @staticmethod
    def _empty_assigns(fn_body: list[ast.stmt]) -> Iterator[tuple[str, ast.Assign]]:
        for stmt in fn_body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            call = stmt.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in ("empty", "empty_like")
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in ("np", "numpy")
            ):
                yield target.id, stmt

    def _first_use_violation(
        self,
        source: SourceFile,
        scope: ast.AST,
        name: str,
        assign: ast.Assign,
    ) -> Violation | None:
        parents = source.parents()
        after = (assign.lineno, assign.col_offset)
        uses = [
            n
            for n in ast.walk(scope)
            if isinstance(n, ast.Name)
            and n.id == name
            and isinstance(n.ctx, ast.Load)
            and (n.lineno, n.col_offset) > after
        ]
        if not uses:
            return None
        first = min(uses, key=lambda n: (n.lineno, n.col_offset))
        parent = parents.get(first)
        # Safe first uses: subscript store, out= keyword, call argument
        # (out-parameter idiom), attribute assignment targets.
        if isinstance(parent, ast.Subscript):
            if isinstance(parent.ctx, ast.Store):
                return None
            # Subscript load: reading uninitialized elements.
            return self.violation(
                source, first,
                f"'{name}' (np.empty) is read before any element is assigned",
            )
        if isinstance(parent, (ast.keyword, ast.Call)):
            return None
        if isinstance(parent, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.Return, ast.Attribute)):
            return self.violation(
                source, first,
                f"'{name}' (np.empty) is read before any element is assigned",
            )
        return None

    def check(self, source: SourceFile) -> Iterable[Violation]:
        scopes: list[tuple[ast.AST, list[ast.stmt]]] = [
            (source.tree, source.tree.body)
        ]
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, node.body))
        for scope, body in scopes:
            for name, assign in self._empty_assigns(body):
                v = self._first_use_violation(source, scope, name, assign)
                if v is not None:
                    yield v


#: Timing functions of the ``time`` module covered by CL009.  The
#: deadline clock ``time.monotonic`` is deliberately excluded: timeout
#: arithmetic (e.g. the simulated communicator's deadlock guards) is not
#: phase measurement.
_TIMING_FNS = {"perf_counter", "perf_counter_ns", "time", "time_ns"}


@register_rule
class NoRawTimingCalls(Rule):
    """CL009: no raw ``time.perf_counter()`` / ``time.time()`` timing.

    Every measured second must be visible to the telemetry exporters and
    the run scorecard, so phase timing in the solver layers flows through
    :mod:`repro.telemetry` -- ``Tracer.span`` for phases,
    ``repro.telemetry.clock.now`` / ``wall_now`` for raw stamps.  A
    direct ``time.perf_counter()`` call is a timing side channel the
    trace cannot see.  Scope: the four solver/compression layers;
    ``repro/telemetry`` itself is the sanctioned owner of :mod:`time`.
    """

    rule_id = "CL009"
    name = "raw-timing-call"
    description = (
        "raw time.perf_counter()/time.time() outside repro/telemetry; use "
        "Tracer spans or repro.telemetry.clock helpers"
    )
    default_paths = ("cluster/", "node/", "core/", "compression/")

    @staticmethod
    def _timing_names(tree: ast.AST) -> tuple[set[str], set[str]]:
        """Returns (module aliases of ``time``, from-imported fn names)."""
        aliases: set[str] = set()
        from_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "time":
                        aliases.add(a.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for a in node.names:
                    if a.name in _TIMING_FNS:
                        from_names.add(a.asname or a.name)
        return aliases, from_names

    def check(self, source: SourceFile) -> Iterable[Violation]:
        aliases, from_names = self._timing_names(source.tree)
        if not aliases and not from_names:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _TIMING_FNS
                and isinstance(fn.value, ast.Name)
                and fn.value.id in aliases
            ):
                yield self.violation(
                    source,
                    node,
                    f"raw {fn.value.id}.{fn.attr}() timing; route it "
                    "through repro.telemetry (Tracer.span or clock.now/"
                    "wall_now)",
                )
            elif isinstance(fn, ast.Name) and fn.id in from_names:
                yield self.violation(
                    source,
                    node,
                    f"raw time-module call {fn.id}(); route it through "
                    "repro.telemetry (Tracer.span or clock.now/wall_now)",
                )


@register_rule
class RingDepthNotLiteral(Rule):
    """CL008: ring-buffer depths must reference ``RING_DEPTH``.

    The paper's streaming RHS keeps exactly ``RING_DEPTH`` (6) primitive
    z-slices resident -- the WENO5 z-face stencil.  Constructing a
    ``SliceRing`` with a literal depth detaches the buffer from the
    stencil it exists to serve.
    """

    rule_id = "CL008"
    name = "literal-ring-depth"
    description = "SliceRing depth must be RING_DEPTH-derived, not a literal"

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", "")
            if name != "SliceRing":
                continue
            depth_args = [kw.value for kw in node.keywords if kw.arg == "depth"]
            if len(node.args) >= 2:
                depth_args.append(node.args[1])
            for arg in depth_args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    yield self.violation(
                        source,
                        arg,
                        f"literal ring depth {arg.value}; use RING_DEPTH "
                        "from repro.core.ringbuffer",
                    )


@register_rule
class BoundedRecoveryLoops(Rule):
    """CL010: resilience-critical code fails visibly and stays bounded.

    In ``repro.cluster`` and ``repro.resilience``: (a) bare ``except:``
    clauses are forbidden outright -- name what you recover from (CL005
    tolerates logged broad handlers; recovery code gets no such
    leniency); (b) every ``while True`` loop must be *bounded* -- its
    body must either raise on exhaustion or consult a
    deadline/attempt/timeout bound.  An unbounded retry loop turns a
    transient fault into a silent hang, the one failure mode the
    recovery supervisor cannot detect.
    """

    rule_id = "CL010"
    name = "unbounded-recovery"
    description = "bare except / unbounded while-True in resilience paths"
    default_paths = ("cluster/", "resilience/")

    #: Identifiers that signal a bound on the loop (deadline arithmetic,
    #: attempt counters, timeout plumbing).
    _BOUND_RE = re.compile(
        r"(?i)^(deadline|remaining|attempt|attempts|timeout|retries|"
        r"max_\w+|budget)$"
    )

    def _is_bounded(self, loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Raise):
                return True
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None and self._BOUND_RE.match(name):
                return True
        return False

    def check(self, source: SourceFile) -> Iterable[Violation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    source,
                    node,
                    "bare except in a resilience-critical path; name the "
                    "exceptions you recover from",
                )
            if (
                isinstance(node, ast.While)
                and isinstance(node.test, ast.Constant)
                and node.test.value
                and not self._is_bounded(node)
            ):
                yield self.violation(
                    source,
                    node,
                    "unbounded 'while True' retry/wait loop; raise on "
                    "exhaustion or check a deadline/attempt bound",
                )


@register_rule
class UnsynchronizedSharedMutation(Rule):
    """CL011: shared mutable state in ``cluster/`` mutates under a lock.

    The cluster runtime executes every rank on a thread of one process,
    so module-level mutable objects and variables of an enclosing
    function mutated from a nested function (thread bodies, callbacks)
    are *shared across rank threads*.  Mutating them -- item assignment,
    ``del``, or a mutating method call (``append``/``update``/...) --
    outside a ``with <lock>`` block is the static shadow of the data
    races the runtime detector (CC101) finds dynamically.  State that is
    safe by construction (e.g. per-rank slots of a results list) carries
    a trailing ``# lint: disable=CL011`` stating why.
    """

    rule_id = "CL011"
    name = "unsynchronized-shared-mutation"
    description = (
        "module-level or enclosing-scope mutable state mutated from "
        "cluster/ code without holding a lock"
    )
    default_paths = ("cluster/",)

    #: Method names that mutate their receiver in place.
    _MUTATORS = frozenset({
        "append", "add", "update", "pop", "popitem", "extend", "remove",
        "clear", "setdefault", "discard", "insert",
    })
    #: Lock-ish tokens in a ``with`` context expression.
    _LOCK_RE = re.compile(r"(?i)lock|_cv\b|condition|mutex|semaphore")

    @staticmethod
    def _module_mutables(tree: ast.Module) -> set[str]:
        """Module-level names bound to mutable containers (set of str)."""
        out: set[str] = set()
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not targets or value is None:
                continue
            mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "list", "set", "defaultdict",
                                      "deque", "Counter")
            )
            if not mutable:
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    out.add(t.id)
        return out

    def _mutations(self, tree: ast.Module) -> Iterator[tuple[ast.AST, ast.expr, str]]:
        """Yield ``(anchor, mutated_base_expr, verb)`` for every mutation."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for t in targets:
                    if isinstance(t, ast.Subscript):
                        yield node, t.value, "item assignment"
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    if isinstance(t, ast.Subscript):
                        yield node, t.value, "del"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MUTATORS
            ):
                yield node, node.func.value, f".{node.func.attr}()"

    @staticmethod
    def _root_name(expr: ast.expr) -> str | None:
        """Leftmost name of an attribute/subscript chain, or None."""
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    @staticmethod
    def _bound_names(fn: ast.AST) -> set[str]:
        """Names bound directly in a function body (params + assignments)."""
        out = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
        if fn.args.vararg:
            out.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            out.add(fn.args.kwarg.arg)
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn:
                out.add(node.name)
                continue
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
            elif isinstance(node, (ast.AnnAssign, ast.For)):
                t = node.target
                if isinstance(t, ast.Name):
                    out.add(t.id)
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    out.add(node.optional_vars.id)
        return out

    def _enclosing_functions(self, node: ast.AST, parents) -> list[ast.AST]:
        """Function defs containing ``node``, innermost first (list)."""
        out = []
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append(cur)
            cur = parents.get(cur)
        return out

    def _under_lock(self, node: ast.AST, parents) -> bool:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.With, ast.AsyncWith)):
                for item in cur.items:
                    if self._LOCK_RE.search(ast.unparse(item.context_expr)):
                        return True
            cur = parents.get(cur)
        return False

    def check(self, source: SourceFile) -> Iterable[Violation]:
        parents = source.parents()
        module_mutables = self._module_mutables(source.tree)
        bound_cache: dict[ast.AST, set[str]] = {}
        for anchor, base, verb in self._mutations(source.tree):
            name = self._root_name(base)
            if name is None or name == "self":
                continue
            fns = self._enclosing_functions(anchor, parents)
            if not fns:
                continue  # import-time construction, single-threaded
            inner_bound = bound_cache.setdefault(
                fns[0], self._bound_names(fns[0])
            )
            shared = None
            if name in inner_bound:
                pass  # function-local state: not shared
            elif any(
                name in bound_cache.setdefault(fn, self._bound_names(fn))
                for fn in fns[1:]
            ):
                shared = "enclosing-scope (cross-thread)"
            elif name in module_mutables:
                shared = "module-level"
            if shared is None:
                continue
            if self._under_lock(anchor, parents):
                continue
            yield self.violation(
                source,
                anchor,
                f"unsynchronized {verb} on {shared} state "
                f"{ast.unparse(base)!r}; hold a lock or justify with a "
                "trailing '# lint: disable=CL011'",
            )


@register_rule
class NoBarePrintInLibrary(Rule):
    """CL012: library code does not ``print()``; it logs structured events.

    A production campaign multiplexes many runs onto shared processes,
    and a bare ``print()`` from deep inside the solver layers is an
    unattributed, unparsable stdout line the moment two runs interleave.
    Library code routes run-time reporting through the logfmt logger of
    :mod:`repro.telemetry.log` (``get_logger(...).info/warn/...``),
    which stamps every line with a timestamp, level and component name.
    Command-line front ends (files named ``cli.py`` or ``__main__.py``)
    are the user-facing surface and keep ``print()``; anything else that
    must write raw text (a table renderer handed an explicit stream,
    say) justifies it with a trailing ``# lint: disable=CL012``.
    """

    rule_id = "CL012"
    name = "bare-print-in-library"
    description = (
        "bare print() in library code; route it through "
        "repro.telemetry.log (CLI modules cli.py/__main__.py exempt)"
    )

    #: File basenames that are CLI front ends (print is their job).
    _CLI_BASENAMES = frozenset({"cli.py", "__main__.py"})

    def check(self, source: SourceFile) -> Iterable[Violation]:
        basename = source.path.replace("\\", "/").rsplit("/", 1)[-1]
        if basename in self._CLI_BASENAMES:
            return
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    source,
                    node,
                    "bare print() in library code; use "
                    "repro.telemetry.log.get_logger(...) (or justify "
                    "with a trailing '# lint: disable=CL012')",
                )
