"""Runtime numerics sanitizer for the solver's state invariants.

The quasi-conservative (Gamma, Pi) scheme must never produce NaN/Inf,
negative density, negative ``Gamma`` or negative pressure mid-collapse
(paper Section 3; the EOS inversion divides by ``Gamma`` and the sound
speed takes a square root).  :class:`NumericsSanitizer` checks a block's
post-stage state for exactly those conditions, plus the storage-dtype
contract on block writes, under a configurable policy:

``off``
    No sanitizer is constructed at all (:func:`make_sanitizer` returns
    ``None``), so production hot loops carry a single ``is None`` test
    and no checking overhead.
``warn``
    Violations are recorded in the per-run :class:`ViolationReport` and
    emitted as :class:`NumericsWarning`; the run continues.
``raise``
    The first violation raises :class:`NumericsViolationError` carrying
    the block-level findings.

Hook points cover every kernel path of the step loop:
:func:`repro.core.kernels.update_stage` (post-UP state and storage
dtype), :meth:`repro.node.solver.NodeSolver.evaluate_rhs` (per-block RHS
finiteness), :meth:`repro.node.solver.NodeSolver.max_sos` (per-block SOS
finiteness), :func:`repro.cluster.driver._dump` (FWT input fields),
:meth:`repro.core.timestepper.TimeStepper.advance` (array-level stage
checks) and :func:`repro.cluster.driver.rank_main` (initial condition +
per-stage context), surfaced through ``RunResult.sanitizer_report`` and
the ``run --sanitize`` CLI flag.  Findings are localized to the block
index and the offending quantity name (:attr:`NumericsViolation.field`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..physics.eos import pressure
from ..physics.state import (
    ENERGY,
    GAMMA,
    NAMES,
    NQ,
    PI,
    RHO,
    RHOU,
    RHOV,
    RHOW,
    COMPUTE_DTYPE,
    STORAGE_DTYPE,
)

#: Valid sanitizer policies.
POLICIES = ("off", "warn", "raise")


class NumericsWarning(RuntimeWarning):
    """Warning category used by the ``warn`` policy."""


@dataclass(frozen=True)
class NumericsViolation:
    """One numerics-contract violation observed at runtime."""

    check: str  #: "non_finite" | "negative_density" | "negative_gamma" | "negative_pressure" | "storage_dtype"
    where: str  #: run context, e.g. "step 12 stage 1" or "initial condition"
    block: tuple[int, int, int] | None  #: block index, if block-resolved
    count: int  #: number of offending cells (1 for dtype violations)
    worst: float  #: most extreme offending value (nan for non-finite)
    #: offending quantity name(s), comma-joined from
    #: :data:`repro.physics.state.NAMES` (or a caller-supplied label such
    #: as ``"sos"``); ``None`` when the quantity axis cannot be resolved.
    field: str | None = None

    def format(self) -> str:
        """Returns a one-line human-readable description."""
        loc = f" block {self.block}" if self.block is not None else ""
        fld = f" field {self.field}" if self.field else ""
        return (
            f"{self.check} at {self.where}{loc}{fld}: {self.count} "
            f"cell(s), worst {self.worst:g}"
        )


class NumericsViolationError(RuntimeError):
    """Raised by the ``raise`` policy; carries the block-level findings."""

    def __init__(self, violations: list[NumericsViolation]):
        self.violations = list(violations)
        super().__init__(
            "numerics sanitizer: "
            + "; ".join(v.format() for v in self.violations)
        )


@dataclass
class ViolationReport:
    """Accumulated findings of one run (or one rank of a run)."""

    violations: list[NumericsViolation] = field(default_factory=list)
    checks_run: int = 0

    def __len__(self) -> int:
        return len(self.violations)

    def by_check(self) -> dict[str, int]:
        """Returns violation counts keyed by check name."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.check] = out.get(v.check, 0) + 1
        return out

    def summary(self) -> str:
        """Returns a one-line summary suitable for diagnostics output."""
        if not self.violations:
            return f"numerics sanitizer: clean ({self.checks_run} checks)"
        parts = ", ".join(f"{k}={n}" for k, n in sorted(self.by_check().items()))
        return (
            f"numerics sanitizer: {len(self.violations)} violation(s) in "
            f"{self.checks_run} checks ({parts})"
        )

    @classmethod
    def merged(cls, reports: list["ViolationReport"]) -> "ViolationReport":
        """Returns the union of per-rank reports (cluster reduction)."""
        out = cls()
        for r in reports:
            out.violations.extend(r.violations)
            out.checks_run += r.checks_run
        return out


class NumericsSanitizer:
    """Checks post-stage solver state against the numerics contracts.

    Parameters
    ----------
    policy:
        ``"warn"`` or ``"raise"`` (``"off"`` is expressed by *not*
        constructing a sanitizer; see :func:`make_sanitizer`).
    p_min:
        Pressure floor; states with ``p < p_min`` are violations.  The
        stiffened-gas liquid tolerates small negative absolute pressure,
        but the paper's collapse runs treat ``p < 0`` as divergence.
    """

    def __init__(self, policy: str = "warn", p_min: float = 0.0):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown sanitizer policy {policy!r}; choose from {POLICIES}"
            )
        self.policy = policy
        self.p_min = float(p_min)
        self.report = ViolationReport()
        self.context = "unspecified"

    def set_context(self, context: str) -> None:
        """Set the run context stamped onto subsequent findings."""
        self.context = context

    # -- checks ---------------------------------------------------------

    def _finite_violations(
        self,
        arr: np.ndarray,
        where: str,
        block: tuple[int, int, int] | None,
        field: str | None = None,
    ) -> list[NumericsViolation]:
        """Finiteness findings of one array, localized to quantity names.

        Returns an empty list for finite data, else a single
        ``non_finite`` violation.  When ``field`` is not supplied and the
        array carries the trailing quantity axis, the offending quantity
        names are resolved from :data:`repro.physics.state.NAMES` and
        comma-joined into :attr:`NumericsViolation.field`.
        """
        finite = np.isfinite(arr)
        if finite.all():
            return []
        if field is None and arr.ndim >= 1 and arr.shape[-1] == NQ:
            bad = ~finite
            field = ",".join(
                NAMES[q] for q in range(NQ) if bad[..., q].any()
            )
        return [
            NumericsViolation(
                check="non_finite",
                where=where,
                block=block,
                count=int(arr.size - finite.sum()),
                worst=float("nan"),
                field=field,
            )
        ]

    def check_finite(
        self,
        arr: np.ndarray,
        where: str | None = None,
        block: tuple[int, int, int] | None = None,
        field: str | None = None,
    ) -> list[NumericsViolation]:
        """Finiteness-only check for non-state arrays; returns findings.

        Used by the RHS / SOS / FWT hook sites, whose arrays are time
        derivatives, reductions or single scalar fields: the state
        invariants (positive density, pressure floor) do not apply there,
        only the no-NaN/Inf contract.  ``field`` labels findings whose
        quantity cannot be inferred from the array shape (e.g. ``"sos"``
        for the speed-of-sound reduction, ``"p"`` for the pressure dump).
        """
        if self.policy == "off":
            return []
        found = self._finite_violations(
            np.asarray(arr), where or self.context, block, field
        )
        self.report.checks_run += 1
        self._handle(found)
        return found

    def check_state(
        self,
        aos: np.ndarray,
        where: str | None = None,
        block: tuple[int, int, int] | None = None,
    ) -> list[NumericsViolation]:
        """Check one AoS state array ``(..., NQ)``; returns the findings.

        Runs the finiteness check on any array; the density / Gamma /
        pressure invariants additionally require the trailing quantity
        axis, so shape-agnostic callers (the array-level time stepper)
        degrade gracefully.
        """
        if self.policy == "off":
            return []
        aos = np.asarray(aos)
        where = where or self.context
        found: list[NumericsViolation] = list(
            self._finite_violations(aos, where, block)
        )
        if not found and aos.ndim >= 1 and aos.shape[-1] == NQ:
            f = np.asarray(aos, dtype=COMPUTE_DTYPE)
            rho = f[..., RHO]
            if (rho <= 0.0).any():
                found.append(
                    NumericsViolation(
                        check="negative_density",
                        where=where,
                        block=block,
                        count=int((rho <= 0.0).sum()),
                        worst=float(rho.min()),
                        field="rho",
                    )
                )
            G = f[..., GAMMA]
            if (G < 0.0).any():
                found.append(
                    NumericsViolation(
                        check="negative_gamma",
                        where=where,
                        block=block,
                        count=int((G < 0.0).sum()),
                        worst=float(G.min()),
                        field="Gamma",
                    )
                )
            if not found:
                p = pressure(
                    rho, f[..., RHOU], f[..., RHOV], f[..., RHOW],
                    f[..., ENERGY], G, f[..., PI],
                )
                if (p < self.p_min).any():
                    found.append(
                        NumericsViolation(
                            check="negative_pressure",
                            where=where,
                            block=block,
                            count=int((p < self.p_min).sum()),
                            worst=float(p.min()),
                            field="p",
                        )
                    )
        self.report.checks_run += 1
        self._handle(found)
        return found

    def check_block_write(
        self,
        aos: np.ndarray,
        where: str | None = None,
        block: tuple[int, int, int] | None = None,
    ) -> list[NumericsViolation]:
        """Check the storage-dtype contract of a block write."""
        if self.policy == "off":
            return []
        self.report.checks_run += 1
        if aos.dtype == np.dtype(STORAGE_DTYPE):
            return []
        found = [
            NumericsViolation(
                check="storage_dtype",
                where=where or self.context,
                block=block,
                count=1,
                worst=float(np.dtype(aos.dtype).itemsize),
            )
        ]
        self._handle(found)
        return found

    # -- policy ---------------------------------------------------------

    def _handle(self, found: list[NumericsViolation]) -> None:
        if not found:
            return
        self.report.violations.extend(found)
        if self.policy == "raise":
            raise NumericsViolationError(found)
        for v in found:
            warnings.warn(v.format(), NumericsWarning, stacklevel=3)


def make_sanitizer(policy: str, p_min: float = 0.0) -> NumericsSanitizer | None:
    """Returns a sanitizer for ``policy``, or ``None`` for ``"off"``.

    Returning ``None`` (rather than a no-op object) keeps the ``off``
    policy free of any per-block call overhead: hook sites guard with a
    single ``if sanitizer is not None``.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown sanitizer policy {policy!r}; choose from {POLICIES}"
        )
    if policy == "off":
        return None
    return NumericsSanitizer(policy=policy, p_min=p_min)
