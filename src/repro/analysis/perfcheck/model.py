"""Declared hot-path kernel specifications and the shared roofline table.

The paper's core layer kept a hand-maintained list of the kernels that
matter (RHS, DT, UP and their substages) and hand-verified each one
before lowering it to QPX intrinsics.  This module is that list for the
Python reproduction: every entry names a kernel function in one of the
hot-path modules, the backends it is *declared* to target, its dtype
contract, and (when the roofline model covers it) the key into the
shared per-point arithmetic table
:data:`repro.perf.kernels.KERNEL_ARITHMETIC`.

The static analyzer certifies each declared kernel: a kernel declared
for the ``numba`` backend that carries compiled-subset findings (CP004/
CP005) is *not* certified for it, and the emitted
``kernel_manifest.json`` records the de-rated backend set.  The upcoming
backend registry consumes the manifest as its source of truth, so
adding a kernel here is the first step of the "certify a new kernel"
walkthrough in ``docs/analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...perf.kernels import KERNEL_ARITHMETIC, KernelArithmetic

#: Backend identifiers a kernel can declare.
BACKEND_NUMPY = "numpy"
BACKEND_NUMBA = "numba"

#: Dtype-contract shorthand strings used by the spec table.
_COMPUTE = "dtype-preserving; production COMPUTE_DTYPE (float64) SoA"
_AOS_IN = "STORAGE_DTYPE (float32) AoS in, COMPUTE_DTYPE (float64) out"
_AOS_INPLACE = (
    "STORAGE_DTYPE (float32) AoS in place; COMPUTE_DTYPE (float64) "
    "arithmetic"
)


@dataclass(frozen=True)
class KernelSpec:
    """Declaration of one hot-path kernel the analyzer certifies."""

    name: str  #: function name in the defining module
    module: str  #: path suffix of the defining module (``physics/weno.py``)
    backends: tuple[str, ...]  #: declared target backends
    dtype_contract: str  #: human-readable precision contract
    model_key: str | None = None  #: key into the shared arithmetic table


#: The declared hot-path kernels (ISSUE 6 module set).  ``numba`` in the
#: backend tuple means the kernel is intended for nopython compilation
#: and must stay inside the compiled subset (rules CP004/CP005);
#: numpy-only kernels use constructs the vectorized fallback needs
#: (moveaxis wrappers, ring buffers, closures) and are exempt from
#: subset certification by declaration rather than by pragma.
HOT_KERNELS: tuple[KernelSpec, ...] = (
    # physics.weno -- the WENO stage dominates the RHS (83 % of its
    # instructions, paper Table 8).
    KernelSpec("weno5", "physics/weno.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "weno5"),
    KernelSpec("weno5_fused", "physics/weno.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "weno5"),
    KernelSpec("weno3", "physics/weno.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, None),
    # physics.riemann -- the HLLE stage.
    KernelSpec("hlle_flux", "physics/riemann.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "hlle"),
    KernelSpec("einfeldt_wave_speeds", "physics/riemann.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "wavespeeds"),
    KernelSpec("hllc_flux", "physics/riemann.py",
               (BACKEND_NUMPY,), _COMPUTE, None),
    # physics.eos -- CONV/BACK stages and the DT reduction chain.
    KernelSpec("conserved_to_primitive", "physics/eos.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "conv"),
    KernelSpec("primitive_to_conserved", "physics/eos.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "back"),
    KernelSpec("pressure", "physics/eos.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "pressure"),
    KernelSpec("total_energy", "physics/eos.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "total_energy"),
    KernelSpec("sound_speed", "physics/eos.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "sound_speed"),
    KernelSpec("max_characteristic_velocity", "physics/eos.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, "sos"),
    # physics.equations -- RHS assembly (directional sweeps).
    KernelSpec("directional_rhs", "physics/equations.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, None),
    KernelSpec("compute_rhs", "physics/equations.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _COMPUTE, None),
    # core.kernels -- block-level wrappers (AoS/SoA conversion, ring
    # buffers: numpy-only by design) and the UP stage.
    KernelSpec("rhs_kernel", "core/kernels.py",
               (BACKEND_NUMPY,), _AOS_IN, None),
    KernelSpec("rhs_kernel_slices", "core/kernels.py",
               (BACKEND_NUMPY,), _AOS_IN, None),
    KernelSpec("sos_kernel", "core/kernels.py",
               (BACKEND_NUMPY,), _AOS_IN, None),
    KernelSpec("update_stage", "core/kernels.py",
               (BACKEND_NUMPY, BACKEND_NUMBA), _AOS_INPLACE, "up"),
    # core.timestepper / node layer -- orchestration around the kernels.
    KernelSpec("advance", "core/timestepper.py",
               (BACKEND_NUMPY,), _AOS_INPLACE, None),
    KernelSpec("fill_block_ghosts", "node/ghosts.py",
               (BACKEND_NUMPY,), "STORAGE_DTYPE (float32) AoS in place",
               None),
)

#: Module path suffixes the ``--perf`` CLI analyzes by default.
HOT_MODULES: tuple[str, ...] = tuple(sorted({s.module for s in HOT_KERNELS}))


def modeled_arithmetic(spec: KernelSpec) -> KernelArithmetic | None:
    """The shared roofline-table entry of a kernel spec, or None."""
    if spec.model_key is None:
        return None
    return KERNEL_ARITHMETIC.get(spec.model_key)
