"""kernel-check: static hot-path performance analyzer (CP-series).

Whole-program abstract interpretation over the solver's hot-path
modules (WENO, Riemann, EOS, RHS assembly, block kernels, time stepper,
ghost exchange) that certifies each declared kernel for the compiled
backends the roadmap targets.  Six rules -- CP001 silent float32/float64
promotion, CP002 strong-scalar contamination, CP003 hidden-temporary
accounting, CP004 compiled-subset certification, CP005 fancy-indexing
fusion blockers, CP006 counted-vs-modeled arithmetic-intensity
divergence -- produce :class:`~repro.analysis.lint.Violation` findings
plus a machine-readable ``kernel_manifest.json``.  Run with
``python -m repro.analysis --perf``; see ``docs/analysis.md``.
"""

from .dtypes import DtypeInference, Promotion, StrongScalar, infer
from .manifest import (
    MANIFEST_SCHEMA,
    build_kernel_manifest,
    certified_backends,
    write_kernel_manifest,
)
from .model import (
    BACKEND_NUMBA,
    BACKEND_NUMPY,
    HOT_KERNELS,
    HOT_MODULES,
    KernelSpec,
    modeled_arithmetic,
)
from .program import (
    FunctionEntry,
    KernelInfo,
    PerfProgram,
    build_program,
    count_flops,
    count_operand_bytes,
)
from .report import PerfReport
from .rules import (
    ALLOC_THRESHOLD,
    INTENSITY_TOLERANCE,
    PERF_REGISTRY,
    PerfRule,
    analyze_paths,
    check_paths,
    check_program,
    check_sources,
    register_perf_rule,
    registered_perf_rules,
)

__all__ = [
    "ALLOC_THRESHOLD",
    "BACKEND_NUMBA",
    "BACKEND_NUMPY",
    "DtypeInference",
    "FunctionEntry",
    "HOT_KERNELS",
    "HOT_MODULES",
    "INTENSITY_TOLERANCE",
    "KernelInfo",
    "KernelSpec",
    "MANIFEST_SCHEMA",
    "PERF_REGISTRY",
    "PerfProgram",
    "PerfReport",
    "PerfRule",
    "Promotion",
    "StrongScalar",
    "analyze_paths",
    "build_kernel_manifest",
    "build_program",
    "certified_backends",
    "check_paths",
    "check_program",
    "check_sources",
    "count_flops",
    "count_operand_bytes",
    "infer",
    "modeled_arithmetic",
    "register_perf_rule",
    "registered_perf_rules",
    "write_kernel_manifest",
]
