"""CP-series rules of the static hot-path performance analyzer.

Six whole-program rules certify the declared hot-path kernels
(:data:`~repro.analysis.perfcheck.model.HOT_KERNELS`) for the compiled
backends the roadmap targets:

* **CP001 silent-promotion** -- a float32 and a float64 operand provably
  meet in one expression (dtype propagation per
  :mod:`~repro.analysis.perfcheck.dtypes`); the mix silently doubles the
  memory traffic of the whole expression chain.
* **CP002 strong-scalar** -- a dtype-less ``np.asarray(scalar)`` /
  ``np.float64(x)`` creates a *strong* float64 scalar array (NEP 50)
  that promotes every float32 expression it touches.
* **CP003 hidden-temporaries** -- a kernel-path function allocates many
  intermediate arrays per call with (almost) no ``out=`` / workspace /
  in-place discipline, against the ``Weno5Workspace`` / ``SliceRing``
  idiom of the fused kernels.
* **CP004 compiled-subset** -- a kernel declared for the ``numba``
  backend contains constructs nopython mode cannot lower (try/except,
  closures, generator expressions, dict/list juggling, dict-of-functions
  dispatch, context managers).
* **CP005 fancy-indexing** -- advanced indexing (index arrays, boolean
  masks) in a compiled-target kernel blocks loop fusion.
* **CP006 intensity-divergence** -- the statically counted arithmetic
  intensity of a kernel diverges more than 2x from the shared roofline
  table :data:`repro.perf.kernels.KERNEL_ARITHMETIC` -- either the
  kernel grew arithmetic the model does not know about, or the model is
  stale.

All findings are :class:`~repro.analysis.lint.Violation` records, honor
``# lint: disable=CPxxx`` pragmas and accumulate in a
:class:`~repro.analysis.perfcheck.report.PerfReport`.  Run with
``python -m repro.analysis --perf [paths]``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from ..lint import Violation, iter_python_files
from .dtypes import ELEMENTWISE, infer
from .model import BACKEND_NUMBA, HOT_KERNELS, KernelSpec, modeled_arithmetic
from .program import (
    _REDUCTIONS,
    FunctionEntry,
    PerfProgram,
    _call_name,
    build_program,
)
from .report import PerfReport

#: CP003 fires at or above this many allocating array ops per function.
ALLOC_THRESHOLD = 12

#: ... unless at least ``alloc / DISCIPLINE_RATIO`` ops are disciplined
#: (``out=``, in-place augmented assignment, subscript store, copyto).
DISCIPLINE_RATIO = 4

#: CP006 fires when counted and modeled intensity diverge beyond this.
INTENSITY_TOLERANCE = 2.0


class PerfRule:
    """Base class of whole-program perfcheck rules (CP-series)."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        """Yield the rule's findings over the kernel program."""
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        """Returns a :class:`Violation` anchored at an AST node."""
        return Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


#: The open perf-rule registry, keyed by rule id.
PERF_REGISTRY: dict[str, type[PerfRule]] = {}


def register_perf_rule(cls: type[PerfRule]) -> type[PerfRule]:
    """Class decorator adding a perf rule to the registry."""
    if not cls.rule_id:
        raise ValueError(f"perf rule {cls.__name__} has no rule_id")
    if cls.rule_id in PERF_REGISTRY and PERF_REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate perf rule id {cls.rule_id}")
    PERF_REGISTRY[cls.rule_id] = cls
    return cls


def registered_perf_rules() -> list[type[PerfRule]]:
    """Returns the registered perf-rule classes in id order."""
    return [PERF_REGISTRY[k] for k in sorted(PERF_REGISTRY)]


# -- scan-scope helpers ---------------------------------------------------


def _unique_functions(
    program: PerfProgram, numba_only: bool = False
) -> Iterator[FunctionEntry]:
    """Each function in scope exactly once (kernels + helper closures).

    With ``numba_only`` the scope narrows to the closures of kernels
    declared for the ``numba`` backend (CP004/CP005 certification).
    """
    seen: set[tuple[str, str]] = set()
    for info in program.kernels:
        if numba_only and BACKEND_NUMBA not in info.spec.backends:
            continue
        for name in info.closure:
            entry = program.functions.get(name)
            if entry is None:
                continue
            key = (entry.path, entry.name)
            if key in seen:
                continue
            seen.add(key)
            yield entry


# -- CP001 / CP002: dtype propagation -------------------------------------


@register_perf_rule
class SilentPromotion(PerfRule):
    """CP001: provable float32/float64 mix inside one expression.

    Dtype labels propagate from explicit evidence only (``dtype=``
    keywords, ``astype``, the ``COMPUTE_DTYPE``/``STORAGE_DTYPE``
    contract names, layer helpers); a finding therefore means the
    promotion is certain, not merely possible.
    """

    rule_id = "CP001"
    name = "silent-promotion"
    description = (
        "float32 and float64 operands provably meet in one kernel "
        "expression -- the silent upcast doubles memory traffic"
    )

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        for entry in _unique_functions(program):
            for promo in infer(entry.fn).promotions:
                yield self.violation(
                    entry.path, promo.node,
                    f"silent {promo.left}/{promo.right} promotion in "
                    f"{entry.name}(): pin one operand to the contract "
                    "dtype (COMPUTE_DTYPE / STORAGE_DTYPE)",
                )


@register_perf_rule
class StrongScalarContamination(PerfRule):
    """CP002: dtype-less scalar-array construction in a kernel body.

    ``np.asarray(0.5)`` / ``np.float64(x)`` produce float64 scalar
    *arrays*, which NEP 50 treats as strong: unlike plain python floats
    they promote every float32 array they meet.  Kernel bodies must pass
    python scalars through unwrapped or pin an explicit ``dtype=``.
    """

    rule_id = "CP002"
    name = "strong-scalar"
    description = (
        "dtype-less np.asarray/np.array/np.float64 of a python scalar "
        "in a kernel body -- a strong float64 scalar that contaminates "
        "float32 expressions"
    )

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        for entry in _unique_functions(program):
            for ev in infer(entry.fn).strong_scalars:
                yield self.violation(
                    entry.path, ev.node,
                    f"{ev.func}() wraps a python scalar into a strong "
                    f"float64 array inside {entry.name}(); pass the bare "
                    "scalar (weak under NEP 50) or pin dtype=",
                )


# -- CP003: hidden-temporary accounting -----------------------------------


def _alloc_discipline(fn: ast.AST) -> tuple[int, int]:
    """(allocating array ops, disciplined ops) of one function body.

    Index arithmetic inside subscript slices and ``is``/``is not``
    identity checks are scalar bookkeeping, not array temporaries, and
    are excluded from the allocation count.
    """
    in_slice: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            for sub in ast.walk(node.slice):
                in_slice.add(id(sub))
    alloc = 0
    disciplined = 0
    for node in ast.walk(fn):
        if id(node) in in_slice:
            continue
        if isinstance(node, ast.BinOp):
            alloc += 1
        elif isinstance(node, ast.UnaryOp):
            if not isinstance(node.operand, ast.Constant):
                alloc += 1
        elif isinstance(node, ast.Compare):
            if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
                continue
            alloc += 1
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            has_out = any(kw.arg == "out" for kw in node.keywords)
            if name == "copyto":
                disciplined += 1
            elif name in ELEMENTWISE or name in _REDUCTIONS:
                if has_out:
                    disciplined += 1
                else:
                    alloc += 1
            elif has_out:
                disciplined += 1
        elif isinstance(node, ast.AugAssign):
            disciplined += 1
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Subscript):
                    disciplined += 1
    return alloc, disciplined


@register_perf_rule
class HiddenTemporaries(PerfRule):
    """CP003: chained ufunc expressions allocating many intermediates.

    Every un-disciplined array binop/ufunc call in a NumPy kernel
    allocates (and streams) a hidden temporary; the paper's micro-fused
    kernels exist precisely to avoid those passes.  A function whose
    allocating-op count reaches :data:`ALLOC_THRESHOLD` with less than
    one disciplined op (``out=`` / in-place / workspace store) per
    :data:`DISCIPLINE_RATIO` allocations is flagged.
    """

    rule_id = "CP003"
    name = "hidden-temporaries"
    description = (
        "kernel-path function allocating many intermediate arrays per "
        "call with no out=/workspace reuse (Weno5Workspace idiom)"
    )

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        for entry in _unique_functions(program):
            alloc, disciplined = _alloc_discipline(entry.fn)
            if alloc >= ALLOC_THRESHOLD and disciplined * DISCIPLINE_RATIO < alloc:
                yield self.violation(
                    entry.path, entry.fn,
                    f"{entry.name}() allocates ~{alloc} intermediate "
                    f"arrays per call ({disciplined} disciplined ops); "
                    "thread out=/workspace buffers through the hot "
                    "expression chain (Weno5Workspace idiom)",
                )


# -- CP004: compiled-subset certification ---------------------------------

#: Constructs Numba nopython mode cannot lower, with display labels.
_SUBSET_VIOLATIONS: tuple[tuple[type, str], ...] = (
    (ast.Try, "try/except block"),
    (ast.With, "context manager"),
    (ast.Lambda, "lambda closure"),
    (ast.GeneratorExp, "generator expression"),
    (ast.ListComp, "list comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.DictComp, "dict comprehension"),
    (ast.Dict, "dict literal"),
    (ast.Set, "set literal"),
    (ast.List, "list literal"),
    (ast.Global, "global statement"),
    (ast.Nonlocal, "nonlocal statement"),
    (ast.Starred, "star-unpacking"),
)


@register_perf_rule
class CompiledSubset(PerfRule):
    """CP004: constructs nopython compilation cannot lower.

    Applies to kernels declared for the ``numba`` backend and their
    helper closures: object-mode constructs (try/except, context
    managers), closures (lambda, nested def), generator/list/dict
    comprehensions, dict/list-of-array juggling, and dict-of-functions
    dispatch through a module-level table.  A kernel carrying CP004
    findings is de-rated to the ``numpy`` backend in the manifest.
    """

    rule_id = "CP004"
    name = "compiled-subset"
    description = (
        "construct Numba nopython mode cannot lower inside a kernel "
        "declared for a compiled backend"
    )

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        for entry in _unique_functions(program, numba_only=True):
            dict_names = program.dict_consts.get(entry.path, set())
            for node in ast.walk(entry.fn):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not entry.fn:
                        yield self.violation(
                            entry.path, node,
                            f"nested function {node.name}() inside "
                            f"{entry.name}(): closures do not lower to "
                            "nopython code",
                        )
                    continue
                for typ, label in _SUBSET_VIOLATIONS:
                    if isinstance(node, typ):
                        yield self.violation(
                            entry.path, node,
                            f"{label} inside compiled-target kernel "
                            f"{entry.name}(): outside the nopython "
                            "subset",
                        )
                        break
                if (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in dict_names
                ):
                    yield self.violation(
                        entry.path, node,
                        f"dict-of-functions dispatch "
                        f"{node.value.id}[...] inside {entry.name}(): "
                        "replace with an explicit branch for compiled "
                        "backends",
                    )


# -- CP005: fancy indexing ------------------------------------------------


def _array_locals(fn: ast.AST) -> set[str]:
    """Local names provably bound to arrays (constructor/ufunc results)."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = _call_name(node.value)
            if name in ELEMENTWISE or name in (
                "empty", "zeros", "ones", "full", "array", "asarray",
                "arange", "argsort", "nonzero", "flatnonzero", "argwhere",
            ):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
    return out


@register_perf_rule
class FancyIndexing(PerfRule):
    """CP005: advanced-indexing patterns that block fusion.

    Index arrays (gathers), boolean masks and list indices force NumPy
    through non-contiguous gather paths and cannot fuse in compiled
    backends; compiled-target kernels must index with slices and
    integers only.  Conservative: an index *name* is flagged only when
    it is provably array-valued in the same function.
    """

    rule_id = "CP005"
    name = "fancy-indexing"
    description = (
        "index-array / boolean-mask / list indexing inside a "
        "compiled-target kernel -- blocks vectorization and fusion"
    )

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        for entry in _unique_functions(program, numba_only=True):
            arrays = _array_locals(entry.fn)
            for node in ast.walk(entry.fn):
                if not isinstance(node, ast.Subscript):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                for idx in self._index_parts(node.slice):
                    label = self._fancy_label(idx, arrays)
                    if label is not None:
                        yield self.violation(
                            entry.path, node,
                            f"{label} index inside compiled-target "
                            f"kernel {entry.name}(): gathers block "
                            "fusion; use slices/integers or hoist a "
                            "precomputed contiguous view",
                        )
                        break

    @staticmethod
    def _index_parts(idx: ast.expr) -> list[ast.expr]:
        if isinstance(idx, ast.Tuple):
            return list(idx.elts)
        return [idx]

    @staticmethod
    def _fancy_label(idx: ast.expr, arrays: set[str]) -> str | None:
        if isinstance(idx, ast.List):
            return "list"
        if isinstance(idx, ast.Compare):
            return "boolean-mask"
        if isinstance(idx, ast.Name) and idx.id in arrays:
            return "index-array"
        if isinstance(idx, ast.Call):
            name = _call_name(idx)
            if name in ("nonzero", "flatnonzero", "argwhere", "where",
                        "argsort"):
                return "index-array"
        return None


# -- CP006: arithmetic-intensity cross-check ------------------------------


@register_perf_rule
class IntensityDivergence(PerfRule):
    """CP006: counted vs modeled arithmetic intensity diverge > 2x.

    The AST-level FLOP/operand count of a kernel (same per-point
    accounting convention as :data:`repro.perf.kernels.KERNEL_ARITHMETIC`)
    must stay within :data:`INTENSITY_TOLERANCE` of the roofline table;
    a divergence means either the kernel gained arithmetic the
    performance model does not account for, or the model table is stale
    -- both invalidate the perf-trajectory projections.
    """

    rule_id = "CP006"
    name = "intensity-divergence"
    description = (
        "statically counted arithmetic intensity of a kernel diverges "
        ">2x from the shared roofline model table"
    )

    def check(self, program: PerfProgram) -> Iterable[Violation]:
        for info in program.kernels:
            model = modeled_arithmetic(info.spec)
            if model is None or info.counted_bytes <= 0:
                continue
            counted = info.counted_intensity
            modeled = model.intensity
            if counted <= 0 or modeled <= 0:
                continue
            ratio = max(counted, modeled) / min(counted, modeled)
            if ratio > INTENSITY_TOLERANCE:
                yield self.violation(
                    info.entry.path, info.entry.fn,
                    f"{info.spec.name}(): counted intensity "
                    f"{counted:.3f} FLOP/B vs modeled {modeled:.3f} "
                    f"(table key {info.spec.model_key!r}) -- "
                    f"{ratio:.1f}x divergence; kernel and "
                    "repro.perf.kernels.KERNEL_ARITHMETIC are out of "
                    "sync",
                )


# -- entry points ---------------------------------------------------------


def check_program(program: PerfProgram) -> PerfReport:
    """Run every registered perf rule; returns the report.

    Violations honor ``# lint: disable=CPxxx`` pragmas in the analyzed
    sources; ``checks_run`` counts (function, rule) scan pairs plus the
    per-kernel cross-checks.
    """
    report = PerfReport()
    rules = [cls() for cls in registered_perf_rules()]
    scanned = len(list(_unique_functions(program)))
    report.checks_run = scanned * len(rules) + len(program.kernels)
    out: list[Violation] = []
    for rule in rules:
        for v in rule.check(program):
            source = program.sources.get(v.path)
            if source is not None and source.disabled(v.rule, v.line):
                continue
            out.append(v)
    report.violations = sorted(set(out))
    return report


def check_sources(
    sources: dict[str, str],
    specs: tuple[KernelSpec, ...] = HOT_KERNELS,
) -> PerfReport:
    """perfcheck a mapping of display path -> source text (report)."""
    return check_program(build_program(sources, specs))


def check_paths(
    paths: Iterable[str | Path],
    specs: tuple[KernelSpec, ...] = HOT_KERNELS,
) -> PerfReport:
    """perfcheck every python file under ``paths``; returns the report."""
    sources = {
        str(f): f.read_text(encoding="utf-8") for f in iter_python_files(paths)
    }
    return check_sources(sources, specs)


def analyze_paths(
    paths: Iterable[str | Path],
    specs: tuple[KernelSpec, ...] = HOT_KERNELS,
) -> tuple[PerfProgram, PerfReport]:
    """Build the program and run the rules in one step.

    Returns ``(program, report)`` -- what the CLI needs to emit both the
    findings and the kernel manifest from a single parse.
    """
    sources = {
        str(f): f.read_text(encoding="utf-8") for f in iter_python_files(paths)
    }
    program = build_program(sources, specs)
    return program, check_program(program)
