"""Static dtype propagation through NumPy expression trees.

The mixed-precision contract of the solver (paper Section 5: float32
block *storage*, float64 SoA *compute*) is only as good as the kernels'
dtype hygiene: one ``np.float64`` scalar array smuggled into a float32
expression silently doubles the memory traffic of the whole chain.  This
module infers dtype labels for the locals of one kernel function by
abstract interpretation over its statements, tracking the evidence the
source itself provides:

* explicit ``dtype=`` keywords and ``.astype(...)`` calls;
* the contract names ``COMPUTE_DTYPE`` (float64) / ``STORAGE_DTYPE``
  (float32) and the layer helpers ``aos_to_soa`` / ``soa_to_aos`` /
  ``zeros_aos`` with their documented defaults;
* ``*_like`` constructors, which inherit their argument's label;
* NEP 50 promotion semantics: python scalars are *weak* (``f32_array *
  2.0`` stays float32) while ``np.float64(x)`` / dtype-less
  ``np.asarray(scalar)`` results are *strong* (they promote).

Whatever has no evidence stays :data:`UNKNOWN` and never participates in
a finding -- the analyzer reports only provable promotions (rule CP001)
and provably strong scalar contamination (rule CP002).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: Dtype lattice labels.
F32 = "float32"
F64 = "float64"
PYFLOAT = "pyfloat"  #: weak python float scalar (NEP 50)
PYINT = "pyint"  #: weak python int scalar (NEP 50)
UNKNOWN = "unknown"

#: Array labels that carry promotion evidence.
_ARRAY_LABELS = (F32, F64)

#: Constructor calls whose ``dtype=`` keyword (or first-argument label,
#: for the ``*_like`` family) decides the result dtype.
_CONSTRUCTORS = frozenset({
    "empty", "zeros", "ones", "full", "array", "asarray",
    "ascontiguousarray", "asfortranarray",
})
_LIKE_CONSTRUCTORS = frozenset({"empty_like", "zeros_like", "ones_like",
                                "full_like"})

#: Elementwise functions that propagate the join of their operand labels.
ELEMENTWISE = frozenset({
    "sqrt", "abs", "absolute", "fabs", "maximum", "minimum", "fmin",
    "fmax", "where", "exp", "log", "log2", "log10", "power", "add",
    "subtract", "multiply", "divide", "true_divide", "negative", "square",
    "sign", "clip", "hypot", "copysign", "mod", "floor_divide",
    "reciprocal", "moveaxis", "swapaxes", "stack", "concatenate",
})

#: Repo-specific helpers with documented dtype defaults
#: (:mod:`repro.physics.state`).
_HELPER_DTYPES = {
    "aos_to_soa": F64,
    "soa_to_aos": F32,
    "zeros_aos": F32,
}

#: Contract constant names (:mod:`repro.physics.state`).
_CONTRACT_NAMES = {"COMPUTE_DTYPE": F64, "STORAGE_DTYPE": F32}


@dataclass(frozen=True)
class Promotion:
    """One provable float32/float64 mix inside a single expression."""

    node: ast.AST  #: the offending BinOp / call node
    left: str  #: dtype label of one operand
    right: str  #: dtype label of the other


@dataclass(frozen=True)
class StrongScalar:
    """One dtype-less scalar-array construction (CP002 evidence)."""

    node: ast.Call  #: the ``np.asarray(scalar)`` / ``np.float64`` call
    func: str  #: constructor name


def dtype_label(node: ast.expr | None) -> str:
    """Label of a dtype-valued expression (``np.float32``, contract names,
    ``"float32"`` strings); :data:`UNKNOWN` when undecidable."""
    if node is None:
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        return dtype_label(ast.Name(id=node.attr))
    if isinstance(node, ast.Name):
        if node.id in _CONTRACT_NAMES:
            return _CONTRACT_NAMES[node.id]
        if node.id in ("float32", "single"):
            return F32
        if node.id in ("float64", "double", "float_"):
            return F64
        return UNKNOWN
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in ("float32", "f4", "<f4"):
            return F32
        if node.value in ("float64", "f8", "<f8"):
            return F64
    if (
        isinstance(node, ast.Call)
        and _call_name(node) == "dtype"
        and node.args
    ):
        return dtype_label(node.args[0])
    return UNKNOWN


def join(a: str, b: str) -> str:
    """NEP 50 join of two operand labels (result label of a binop)."""
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if F64 in (a, b) and F32 in (a, b):
        return F64  # the (flagged) promotion
    for strong in (F64, F32):
        if strong in (a, b):
            return strong  # weak python scalars do not promote arrays
    if PYFLOAT in (a, b):
        return PYFLOAT
    return PYINT


def _call_name(call: ast.Call) -> str | None:
    """Bare name of a call target (``np.sqrt`` -> ``sqrt``), or None."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _dtype_kwarg(call: ast.Call) -> ast.expr | None:
    """The ``dtype=`` keyword value of a call, or None."""
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


class DtypeInference:
    """Per-function dtype abstract interpreter.

    Statements execute in source order over an environment mapping local
    names to lattice labels; every expression evaluation records the
    provable promotions and strong-scalar constructions it encounters.
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef):
        self.fn = fn
        self.env: dict[str, str] = {}
        self.promotions: list[Promotion] = []
        self.strong_scalars: list[StrongScalar] = []

    def run(self) -> "DtypeInference":
        """Interpret the function body; returns self (fluent)."""
        for stmt in self.fn.body:
            self._exec(stmt)
        return self

    # -- statements -----------------------------------------------------

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            label = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, label, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            left = self._target_label(stmt.target)
            right = self.eval(stmt.value)
            self._check_mix(stmt, left, right)
        elif isinstance(stmt, (ast.For, ast.While)):
            for s in stmt.body:
                self._exec(s)
        elif isinstance(stmt, ast.If):
            for s in stmt.body + stmt.orelse:
                self._exec(s)
        elif isinstance(stmt, ast.With):
            for s in stmt.body:
                self._exec(s)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self.eval(stmt.value)

    def _bind(self, target: ast.expr, label: str, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = label
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
            for t, v in zip(target.elts, value.elts):
                self._bind(t, self.eval(v), v)
        elif isinstance(target, ast.Tuple):
            for t in target.elts:
                if isinstance(t, ast.Name):
                    self.env[t.id] = label
        elif isinstance(target, ast.Subscript):
            base = self._target_label(target)
            self._check_mix(target, base, label)

    def _target_label(self, target: ast.expr) -> str:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, UNKNOWN)
        if isinstance(target, ast.Subscript):
            return self._target_label(target.value)
        return UNKNOWN

    def _check_mix(self, node: ast.AST, a: str, b: str) -> None:
        if {a, b} == {F32, F64}:
            self.promotions.append(Promotion(node=node, left=a, right=b))

    # -- expressions ----------------------------------------------------

    def eval(self, node: ast.expr) -> str:
        """Label of an expression; records promotion/contamination
        evidence found while evaluating it."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UNKNOWN
            if isinstance(node.value, float):
                return PYFLOAT
            if isinstance(node.value, int):
                return PYINT
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice) if isinstance(node.slice, ast.expr) else None
            return self.eval(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            self._check_mix(node, left, right)
            return join(left, right)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for c in node.comparators:
                self.eval(c)
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List)):
            for e in node.elts:
                self.eval(e)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return UNKNOWN
        return UNKNOWN

    def _eval_call(self, call: ast.Call) -> str:
        name = _call_name(call)
        arg_labels = [self.eval(a) for a in call.args]
        for kw in call.keywords:
            if kw.arg != "dtype":
                self.eval(kw.value)

        if name == "astype" and call.args:
            return dtype_label(call.args[0])
        if name in ("float32", "single"):
            return F32
        if name in ("float64", "double"):
            self._record_strong(call, name)
            return F64
        if name in _HELPER_DTYPES:
            explicit = dtype_label(_dtype_kwarg(call))
            return explicit if explicit != UNKNOWN else _HELPER_DTYPES[name]
        if name in _LIKE_CONSTRUCTORS:
            explicit = dtype_label(_dtype_kwarg(call))
            if explicit != UNKNOWN:
                return explicit
            return arg_labels[0] if arg_labels else UNKNOWN
        if name in _CONSTRUCTORS:
            explicit = dtype_label(_dtype_kwarg(call))
            if explicit != UNKNOWN:
                return explicit
            if name in ("array", "asarray") and arg_labels:
                if arg_labels[0] in (PYFLOAT, PYINT):
                    # dtype-less scalar -> strong float64 0-d array.
                    self._record_strong(call, name)
                    return F64
                return arg_labels[0]
            if name == "ascontiguousarray" and arg_labels:
                return arg_labels[0]
            return UNKNOWN
        if name in ELEMENTWISE:
            out = UNKNOWN if not arg_labels else arg_labels[0]
            for lab in arg_labels[1:]:
                self._check_mix(call, out, lab)
                out = join(out, lab)
            return out
        return UNKNOWN

    def _record_strong(self, call: ast.Call, name: str) -> None:
        if name in ("float64", "double"):
            self.strong_scalars.append(StrongScalar(node=call, func=name))
            return
        if call.args:
            arg = call.args[0]
            label = (
                self.env.get(arg.id, UNKNOWN)
                if isinstance(arg, ast.Name)
                else self.eval(arg)
                if isinstance(arg, ast.Constant)
                else UNKNOWN
            )
            if label in (PYFLOAT, PYINT) or isinstance(arg, ast.Constant):
                self.strong_scalars.append(StrongScalar(node=call, func=name))


def infer(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> DtypeInference:
    """Run dtype inference over one function; returns the interpreter
    with its ``promotions`` and ``strong_scalars`` evidence lists."""
    return DtypeInference(fn).run()
