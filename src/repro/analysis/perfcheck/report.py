"""Report format of the static performance analyzer (kernel-check).

perfcheck findings are ordinary :class:`repro.analysis.lint.Violation`
records under CP-series rule ids, accumulated in a :class:`PerfReport`
that mirrors the concurrency passes'
:class:`~repro.analysis.concurrency.report.ConcurrencyReport`: the same
``file:line:col: RULE message`` lines on the CLI, the same JSON payload
shape in the CI artifact, and one ``summary()`` string on the run
scorecard.

Rule-id convention: ``CP0xx`` are static whole-program performance
findings (dtype propagation, hidden temporaries, compiled-subset
certification, arithmetic-intensity cross-checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lint import Violation


@dataclass
class PerfReport:
    """Accumulated perfcheck findings of one analysis run."""

    violations: list[Violation] = field(default_factory=list)
    checks_run: int = 0

    def __len__(self) -> int:
        return len(self.violations)

    def by_rule(self) -> dict[str, int]:
        """Returns violation counts keyed by CP rule id."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def summary(self) -> str:
        """Returns a one-line summary suitable for scorecards/CLI."""
        if not self.violations:
            return f"perfcheck: clean ({self.checks_run} checks)"
        parts = ", ".join(f"{k}={n}" for k, n in sorted(self.by_rule().items()))
        return (
            f"perfcheck: {len(self.violations)} finding(s) in "
            f"{self.checks_run} checks ({parts})"
        )

    def to_dict(self) -> dict:
        """Returns a JSON-serializable payload (the CI report artifact)."""
        return {
            "checks_run": self.checks_run,
            "findings": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule,
                    "message": v.message,
                }
                for v in sorted(self.violations)
            ],
            "by_rule": self.by_rule(),
        }
