"""Machine-readable kernel manifest emitted by the perf analyzer.

``kernel_manifest.json`` is the analyzer's certification artifact: one
record per declared hot-path kernel with its signature, dtype contract,
the backend set it is *certified* for (declared backends minus any
compiled backend invalidated by post-pragma CP004/CP005 findings in the
kernel's call closure), and its statically counted arithmetic intensity
next to the shared roofline-model value.  The upcoming backend registry
consumes this file as its source of truth for which kernels may be
dispatched to a compiled backend; CI regenerates and uploads it on every
run so drift between code and certification is visible in review.

Schema (``repro.kernel_manifest/v1``)::

    {
      "schema": "repro.kernel_manifest/v1",
      "checks_run": <int>,
      "findings_total": <int>,
      "kernels": [
        {
          "name": ..., "module": ..., "signature": ...,
          "dtype_contract": ...,
          "declared_backends": [...], "certified_backends": [...],
          "closure": [...],
          "arithmetic": {
            "counted_flops_per_point": <float>,
            "counted_bytes_per_point": <float>,
            "counted_intensity": <float|null>,
            "modeled_intensity": <float|null>,
            "model_key": <str|null>
          },
          "findings": <int>
        }, ...
      ]
    }
"""

from __future__ import annotations

import ast
import json
import os
from pathlib import Path

from ..lint import Violation
from .model import BACKEND_NUMBA, modeled_arithmetic
from .program import KernelInfo, PerfProgram
from .report import PerfReport

#: Manifest schema identifier.
MANIFEST_SCHEMA = "repro.kernel_manifest/v1"

#: Findings under these rules invalidate compiled-backend certification.
_CERTIFICATION_RULES = frozenset({"CP004", "CP005"})


def _signature(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    """Source-level signature string of a kernel function."""
    args = fn.args
    parts: list[str] = []
    pos = list(args.posonlyargs) + list(args.args)
    defaults: list[ast.expr | None] = [None] * (len(pos) - len(args.defaults))
    defaults += list(args.defaults)
    for arg, default in zip(pos, defaults):
        text = arg.arg
        if default is not None:
            text += f"={ast.unparse(default)}"
        parts.append(text)
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        text = arg.arg
        if default is not None:
            text += f"={ast.unparse(default)}"
        parts.append(text)
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    return f"{fn.name}({', '.join(parts)})"


def _closure_findings(
    info: KernelInfo, program: PerfProgram, report: PerfReport
) -> list[Violation]:
    """Report findings that land inside the kernel's call closure."""
    spans: list[tuple[str, int, int]] = []
    for name in info.closure:
        entry = program.functions.get(name)
        if entry is None:
            continue
        end = getattr(entry.fn, "end_lineno", entry.fn.lineno)
        spans.append((entry.path, entry.fn.lineno, end or entry.fn.lineno))
    out = []
    for v in report.violations:
        for path, lo, hi in spans:
            if v.path == path and lo <= v.line <= hi:
                out.append(v)
                break
    return out


def certified_backends(
    info: KernelInfo, findings: list[Violation]
) -> tuple[str, ...]:
    """Declared backends minus compiled ones invalidated by findings."""
    backends = list(info.spec.backends)
    if any(v.rule in _CERTIFICATION_RULES for v in findings):
        backends = [b for b in backends if b != BACKEND_NUMBA]
    return tuple(backends)


def build_kernel_manifest(
    program: PerfProgram, report: PerfReport
) -> dict:
    """Build the manifest payload from an analyzed program + report."""
    kernels = []
    for info in sorted(program.kernels, key=lambda k: k.spec.name):
        findings = _closure_findings(info, program, report)
        model = modeled_arithmetic(info.spec)
        kernels.append({
            "name": info.spec.name,
            "module": info.spec.module,
            "signature": _signature(info.entry.fn),
            "dtype_contract": info.spec.dtype_contract,
            "declared_backends": list(info.spec.backends),
            "certified_backends": list(certified_backends(info, findings)),
            "closure": sorted(info.closure),
            "arithmetic": {
                "counted_flops_per_point": round(info.counted_flops, 1),
                "counted_bytes_per_point": round(info.counted_bytes, 1),
                "counted_intensity": (
                    round(info.counted_intensity, 4)
                    if info.counted_bytes > 0 else None
                ),
                "modeled_intensity": (
                    round(model.intensity, 4) if model is not None else None
                ),
                "model_key": info.spec.model_key,
            },
            "findings": len(findings),
        })
    return {
        "schema": MANIFEST_SCHEMA,
        "checks_run": report.checks_run,
        "findings_total": len(report.violations),
        "kernels": kernels,
    }


def write_kernel_manifest(
    program: PerfProgram, report: PerfReport, path: str | Path
) -> dict:
    """Write ``kernel_manifest.json`` atomically; returns the payload.

    The manifest gates CI (drift check), so a crash mid-write must
    never leave a torn file: write to a sibling tmp, fsync, then
    ``os.replace`` into place.
    """
    payload = build_kernel_manifest(program, report)
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    return payload
