"""Whole-program kernel extraction for the static performance analyzer.

Mirrors the skeleton-building phase of
:mod:`repro.analysis.concurrency.commcheck`: every analyzed file is
parsed into the lint engine's :class:`~repro.analysis.lint.SourceFile`,
a per-file context collects its function table and module-level
constants, and the declared hot-path kernels
(:data:`repro.analysis.perfcheck.model.HOT_KERNELS`) are resolved to
their defining functions by ``(module-suffix, name)``.  Each resolved
kernel carries

* its transitive **local helper closure** over the bare-name call graph
  (``weno5`` pulls in ``_weno5_minus_raw``; ``hlle_flux`` pulls in
  ``_hlle_combine``, ``einfeldt_wave_speeds``, ``sound_speed``, ...),
  which is the scan scope of the CP rules, and
* a **static arithmetic estimate**: FLOPs per output point counted off
  the AST (each arithmetic node and elementwise ufunc call is one vector
  op per point; literal-iterable loops multiply; local calls inline
  recursively) and bytes per point counted as distinct load/store
  operand terminals at 8 B compute precision -- the same accounting
  convention as the shared :data:`repro.perf.kernels.KERNEL_ARITHMETIC`
  table, so rule CP006 can cross-check the two.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..lint import SourceFile, path_matches
from .dtypes import ELEMENTWISE
from .model import KernelSpec

#: Recursion bound of the local-call inlining in the FLOP counter.
MAX_INLINE_DEPTH = 6

#: Bound on literal loop multipliers (larger literal spaces degrade to 1).
MAX_LOOP_MULTIPLIER = 64

#: Calls that move or reinterpret data without arithmetic (0 FLOP) and
#: without allocating a *hidden* temporary the CP003 accounting should
#: charge (layout conversions are the mixed-precision contract itself).
_DATA_MOVEMENT = frozenset({
    "astype", "ascontiguousarray", "asfortranarray", "moveaxis",
    "swapaxes", "reshape", "ravel", "transpose", "copy", "copyto",
    "empty", "empty_like", "zeros", "zeros_like", "ones", "ones_like",
    "full", "full_like", "array", "asarray", "dtype", "float", "int",
    "tuple", "len", "range", "isinstance",
})

#: Reduction methods/functions: one op per point (the paper's running
#: max in the SOS kernel).
_REDUCTIONS = frozenset({"max", "min", "sum", "prod", "amax", "amin",
                         "nanmax", "nanmin"})


@dataclass
class FunctionEntry:
    """One locally defined function of the analyzed file set."""

    name: str
    path: str
    fn: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile


@dataclass
class KernelInfo:
    """A resolved hot-path kernel plus its analysis artifacts."""

    spec: KernelSpec
    entry: FunctionEntry
    #: bare names of the transitive local helper closure (kernel included)
    closure: tuple[str, ...] = ()
    counted_flops: float = 0.0
    counted_bytes: float = 0.0

    @property
    def counted_intensity(self) -> float:
        """Statically counted arithmetic intensity (FLOP/byte)."""
        if self.counted_bytes <= 0:
            return 0.0
        return self.counted_flops / self.counted_bytes


@dataclass
class PerfProgram:
    """Everything the CP rules consume: sources, kernels, call graph."""

    sources: dict[str, SourceFile] = field(default_factory=dict)
    #: bare name -> defining entry (first definition wins on collision)
    functions: dict[str, FunctionEntry] = field(default_factory=dict)
    kernels: list[KernelInfo] = field(default_factory=list)
    #: module-level names bound to dict literals, per path (CP004's
    #: dict-of-functions dispatch detection)
    dict_consts: dict[str, set[str]] = field(default_factory=dict)
    #: module-level integer constants, per path (loop enumeration)
    int_consts: dict[str, dict[str, int]] = field(default_factory=dict)

    def scan_entries(self) -> list[tuple[KernelInfo, FunctionEntry]]:
        """(kernel, function) pairs to scan: each kernel with every
        member of its helper closure, deduplicated per kernel."""
        out = []
        for info in self.kernels:
            for name in info.closure:
                entry = self.functions.get(name)
                if entry is not None:
                    out.append((info, entry))
        return out


def _module_consts(tree: ast.Module) -> tuple[set[str], dict[str, int]]:
    """Names of module-level dict literals and int constants."""
    dicts: set[str] = set()
    ints: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if not isinstance(t, ast.Name):
                continue
            if isinstance(node.value, (ast.Dict, ast.DictComp)):
                dicts.add(t.id)
            elif isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, int
            ):
                ints[t.id] = node.value.value
    return dicts, ints


def _call_name(call: ast.Call) -> str | None:
    """Bare target name of a call, or None."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _callees(fn: ast.AST, functions: dict[str, FunctionEntry]) -> set[str]:
    """Bare names of locally defined functions called inside ``fn``.

    Only ``Name`` call targets resolve: kernel helpers are module-level
    functions called by bare name, while attribute calls are either
    ``np.*`` ufuncs or method calls on runtime objects (sanitizers,
    ring buffers) that are not kernel arithmetic.
    """
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in functions:
                out.add(node.func.id)
    return out


def _closure(root: str, functions: dict[str, FunctionEntry]) -> tuple[str, ...]:
    """Transitive bare-name call closure of ``root`` (root included)."""
    seen: list[str] = []
    stack = [root]
    while stack:
        name = stack.pop()
        if name in seen or name not in functions:
            continue
        seen.append(name)
        for callee in sorted(_callees(functions[name].fn, functions)):
            if callee not in seen:
                stack.append(callee)
    return tuple(seen)


# -- static FLOP counting -------------------------------------------------


def _loop_multiplier(node: ast.For, int_consts: dict[str, int]) -> int:
    """Iteration count of a literal-iterable loop (1 when unknown)."""
    it = node.iter
    if isinstance(it, (ast.Tuple, ast.List)):
        n = len(it.elts)
        return n if 1 <= n <= MAX_LOOP_MULTIPLIER else 1
    if (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id == "range"
        and 1 <= len(it.args) <= 2
        and not it.keywords
    ):
        vals = []
        for a in it.args:
            if isinstance(a, ast.Constant) and isinstance(a.value, int):
                vals.append(a.value)
            elif isinstance(a, ast.Name) and a.id in int_consts:
                vals.append(int_consts[a.id])
            else:
                return 1
        n = len(range(*vals))
        return n if 1 <= n <= MAX_LOOP_MULTIPLIER else 1
    return 1


def count_flops(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    functions: dict[str, FunctionEntry],
    int_consts: dict[str, int],
    _depth: int = 0,
    _stack: frozenset[str] = frozenset(),
) -> float:
    """Static per-point FLOP estimate of one function body.

    Each arithmetic AST node (binop, comparison, non-constant negation)
    and each elementwise/reduction ufunc call counts as one vector op per
    output point; loops over literal iterables multiply their body;
    calls to locally defined functions inline the callee's count
    (bounded depth, cycle-safe).
    """

    def stmt_count(stmts: Iterable[ast.stmt]) -> float:
        total = 0.0
        for s in stmts:
            total += one_stmt(s)
        return total

    def one_stmt(s: ast.stmt) -> float:
        if isinstance(s, ast.For):
            mult = _loop_multiplier(s, int_consts)
            return mult * stmt_count(s.body) + stmt_count(s.orelse)
        if isinstance(s, ast.While):
            return stmt_count(s.body)
        if isinstance(s, ast.If):
            return expr_count(s.test) + stmt_count(s.body) + stmt_count(s.orelse)
        if isinstance(s, (ast.With, ast.Try)):
            return stmt_count(getattr(s, "body", []))
        if isinstance(s, ast.Assign):
            return expr_count(s.value)
        if isinstance(s, ast.AnnAssign):
            return expr_count(s.value) if s.value is not None else 0.0
        if isinstance(s, ast.AugAssign):
            return 1.0 + expr_count(s.value)
        if isinstance(s, (ast.Return, ast.Expr)):
            return expr_count(s.value) if s.value is not None else 0.0
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return stmt_count(s.body)  # nested defs run inline (closures)
        return 0.0

    def expr_count(e: ast.expr | None) -> float:
        if e is None or isinstance(e, ast.Constant):
            return 0.0
        total = 0.0
        if isinstance(e, ast.BinOp):
            total += 1.0 + expr_count(e.left) + expr_count(e.right)
        elif isinstance(e, ast.UnaryOp):
            inner = expr_count(e.operand)
            cost = 0.0 if isinstance(e.operand, ast.Constant) else 1.0
            total += cost + inner
        elif isinstance(e, ast.Compare):
            total += float(len(e.ops)) + expr_count(e.left)
            for c in e.comparators:
                total += expr_count(c)
        elif isinstance(e, ast.Call):
            total += _call_cost(e)
            for a in e.args:
                total += expr_count(a)
            for kw in e.keywords:
                total += expr_count(kw.value)
        elif isinstance(e, ast.IfExp):
            total += expr_count(e.test) + expr_count(e.body) + expr_count(e.orelse)
        elif isinstance(e, (ast.Tuple, ast.List, ast.Set)):
            for el in e.elts:
                total += expr_count(el)
        elif isinstance(e, ast.Subscript):
            total += expr_count(e.value)
        elif isinstance(e, ast.Attribute):
            total += expr_count(e.value)
        elif isinstance(e, ast.BoolOp):
            for v in e.values:
                total += expr_count(v)
        elif isinstance(e, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            total += expr_count(e.elt)
        return total

    def _call_cost(call: ast.Call) -> float:
        name = _call_name(call)
        if name is None or name in _DATA_MOVEMENT:
            return 0.0
        is_bare = isinstance(call.func, ast.Name)
        if (
            is_bare
            and name in functions
            and name not in _stack
            and _depth < MAX_INLINE_DEPTH
        ):
            entry = functions[name]
            return count_flops(
                entry.fn, functions, int_consts,
                _depth=_depth + 1, _stack=_stack | {name},
            )
        if name in ELEMENTWISE or name in _REDUCTIONS:
            return 1.0
        return 0.0

    return stmt_count(fn.body)


# -- static operand (byte) counting ---------------------------------------


def count_operand_bytes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> float:
    """Distinct load/store operand terminals of a kernel body x 8 B.

    Loads: distinct subscript patterns read anywhere in the body
    (``W_l[RHO]``, ``v[..., 0:n]``) plus parameters used directly as
    operands.  Stores: distinct subscript-assignment targets, ``out=``
    keyword arguments, augmented-assignment targets, and returned value
    expressions.  The convention matches the byte accounting of
    :data:`repro.perf.kernels.KERNEL_ARITHMETIC` (one compute-precision
    word per operand per point).
    """
    params = {a.arg for a in fn.args.args if a.arg not in ("self", "cls")}
    params |= {a.arg for a in fn.args.kwonlyargs}
    loads: set[str] = set()
    stores: set[str] = set()
    subscripted: set[str] = set()

    def _param_operands(e: ast.expr | None) -> None:
        # A bare parameter counts as a streamed operand only where it is
        # an *arithmetic* operand; attribute probes / shape queries and
        # data-movement call arguments are not per-point traffic.
        if e is None:
            return
        for sub in ast.walk(e):
            if isinstance(sub, ast.Name) and sub.id in params:
                loads.add(sub.id)

    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            try:
                key = ast.unparse(node)
            except (ValueError, RecursionError):  # pragma: no cover - unparse failure
                continue
            if isinstance(node.value, ast.Name):
                subscripted.add(node.value.id)
            if isinstance(node.ctx, ast.Store):
                stores.add(key)
            else:
                loads.add(key)
        elif isinstance(node, ast.BinOp):
            _param_operands(node.left)
            _param_operands(node.right)
        elif isinstance(node, ast.UnaryOp):
            _param_operands(node.operand)
        elif isinstance(node, ast.Compare):
            _param_operands(node.left)
            for c in node.comparators:
                _param_operands(c)
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None and name not in _DATA_MOVEMENT:
                for a in node.args:
                    _param_operands(a)
                for kw in node.keywords:
                    if kw.arg != "out":
                        _param_operands(kw.value)
        elif isinstance(node, ast.keyword) and node.arg == "out":
            try:
                stores.add(ast.unparse(node.value))
            except (ValueError, RecursionError):  # pragma: no cover - unparse failure
                continue
        elif isinstance(node, ast.AugAssign):
            # In-place accumulation into a *streamed* target (a subscript
            # view or a parameter) is a store; accumulating into a local
            # scratch name is the discipline itself, already charged when
            # the scratch was written elsewhere.
            target_is_param = (
                isinstance(node.target, ast.Name) and node.target.id in params
            )
            if isinstance(node.target, ast.Subscript) or target_is_param:
                try:
                    stores.add(ast.unparse(node.target))
                except (ValueError, RecursionError):  # pragma: no cover - unparse failure
                    continue
        elif isinstance(node, ast.Return) and node.value is not None:
            elts = (
                node.value.elts
                if isinstance(node.value, ast.Tuple)
                else [node.value]
            )
            for e in elts:
                if isinstance(e, ast.Constant):
                    continue
                try:
                    stores.add(ast.unparse(e))
                except (ValueError, RecursionError):  # pragma: no cover - unparse failure
                    continue
    # A parameter already streamed through counted subscript operands
    # (``U[RHO]`` ...) must not be double-charged as a bare load.
    loads -= subscripted & params
    # A name that is both loaded and stored (in-place update) is one
    # logical operand streamed twice; count it on both sides.
    return 8.0 * (len(loads) + len(stores))


# -- program assembly -----------------------------------------------------


def build_program(
    sources: dict[str, str],
    specs: tuple[KernelSpec, ...],
) -> PerfProgram:
    """Parse sources and resolve the declared kernels into a program.

    ``sources`` maps display paths to source text; files that fail to
    parse contribute nothing (the lint pass reports their CL000).
    Kernels whose module/function cannot be found are skipped -- the
    manifest reports what was actually resolved.
    """
    program = PerfProgram()
    for path, text in sources.items():
        try:
            sf = SourceFile(path, text)
        except SyntaxError:
            continue
        program.sources[path] = sf
        dicts, ints = _module_consts(sf.tree)
        program.dict_consts[path] = dicts
        program.int_consts[path] = ints
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name not in program.functions:
                    program.functions[node.name] = FunctionEntry(
                        name=node.name, path=path, fn=node, source=sf
                    )

    for spec in specs:
        entry = None
        for path, sf in program.sources.items():
            if not path_matches(path, spec.module):
                continue
            cand = program.functions.get(spec.name)
            if cand is not None and cand.path == path:
                entry = cand
                break
            # the first binding may live in another file; search this one
            for node in ast.walk(sf.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == spec.name
                ):
                    entry = FunctionEntry(spec.name, path, node, sf)
                    break
            if entry is not None:
                break
        if entry is None:
            continue
        info = KernelInfo(spec=spec, entry=entry)
        info.closure = _closure(spec.name, program.functions)
        ints = program.int_consts.get(entry.path, {})
        info.counted_flops = count_flops(entry.fn, program.functions, ints)
        info.counted_bytes = count_operand_bytes(entry.fn)
        program.kernels.append(info)
    return program
