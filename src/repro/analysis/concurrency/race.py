"""Dynamic happens-before race detector for the thread-based cluster runtime.

:mod:`repro.cluster.mpi_sim` runs every rank of the SPMD program on a
thread of one process, so the runtime itself has shared state --
mailboxes, the abort event, the collective rendezvous scratch, the
failure table -- and a bug there is an *actual* data race, not a
simulated one.  :class:`RaceTracker` checks the accesses the runtime
reports against a **vector-clock happens-before order**:

* each rank thread carries a vector clock, ticked on every tracked
  access;
* a point-to-point message piggybacks the sender's clock
  (:meth:`RaceTracker.on_send`) and the receiver joins it on delivery
  (:meth:`RaceTracker.on_deliver`);
* a collective joins the clocks of *all* participants
  (:meth:`RaceTracker.on_collective_enter` /
  :meth:`RaceTracker.on_collective_exit`), giving barriers their full
  synchronizing strength.

Two accesses to the same location, at least one a write, from different
ranks, neither ordered before the other by those edges, are a race --
unless the **lockset fallback** saves them: accesses annotated with a
common lock token are considered protected even when the clocks say
"concurrent" (the runtime's mailboxes synchronize with condition
variables, not messages).

Findings are :class:`~repro.analysis.lint.Violation` records under the
dynamic CC-series ids (``CC101`` shared-state race, ``CC102`` deadlock)
in the shared :class:`~repro.analysis.concurrency.report.ConcurrencyReport`.
The policy knob mirrors the numerics sanitizer: ``off`` builds no
tracker at all (:func:`make_tracker` returns ``None``; the runtime's
hook sites guard with one ``is None`` test), ``warn`` records findings
and emits :class:`ConcurrencyWarning`, ``raise`` aborts the offending
rank with :class:`ConcurrencyViolationError` on the first race.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field

from ..lint import Violation
from .report import ConcurrencyReport

#: Valid concurrency-check policies (mirrors the sanitizer's knob).
POLICIES = ("off", "warn", "raise")

#: Rule id of a dynamic shared-state race finding.
RACE_RULE = "CC101"
#: Rule id of a dynamic deadlock finding (watchdog timeout).
DEADLOCK_RULE = "CC102"


class ConcurrencyWarning(RuntimeWarning):
    """Warning category used by the ``warn`` policy."""


class ConcurrencyViolationError(RuntimeError):
    """Raised by the ``raise`` policy; carries the findings."""

    def __init__(self, violations: list[Violation]):
        self.violations = list(violations)
        super().__init__(
            "concurrency check: "
            + "; ".join(v.message for v in self.violations)
        )


def merge_clocks(into: dict[int, int], other: dict[int, int]) -> None:
    """Join ``other`` into ``into`` componentwise (in place)."""
    for r, c in other.items():
        if c > into.get(r, 0):
            into[r] = c


@dataclass
class _Access:
    """One recorded access to a tracked location."""

    rank: int
    epoch: int  #: accessing rank's own clock component at access time
    locks: frozenset
    site: str

    def happened_before(self, clock: dict[int, int]) -> bool:
        """Is this access ordered before a thread at ``clock``? (bool)"""
        return self.epoch <= clock.get(self.rank, 0)


@dataclass
class _Location:
    """Per-location detector state: last write + reads since."""

    last_write: _Access | None = None
    reads: dict[int, _Access] = field(default_factory=dict)


class RaceTracker:
    """Vector-clock happens-before tracker with a lockset fallback.

    Thread-safe: rank threads report accesses and synchronization edges
    concurrently; one internal lock orders the detector's own state (the
    detector must not race about races).
    """

    def __init__(self, policy: str = "warn"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown concurrency policy {policy!r}; choose from {POLICIES}"
            )
        self.policy = policy
        self.report = ConcurrencyReport()
        self._lock = threading.Lock()
        self._clocks: dict[int, dict[int, int]] = {}
        self._locations: dict[str, _Location] = {}

    # -- clock maintenance ----------------------------------------------

    def _clock(self, rank: int) -> dict[int, int]:
        return self._clocks.setdefault(rank, {})

    def _tick(self, rank: int) -> int:
        clock = self._clock(rank)
        clock[rank] = clock.get(rank, 0) + 1
        return clock[rank]

    def clock_of(self, rank: int) -> dict[int, int]:
        """Snapshot of a rank's current vector clock (dict copy)."""
        with self._lock:
            return dict(self._clock(rank))

    # -- synchronization edges ------------------------------------------

    def on_send(self, rank: int) -> dict[int, int]:
        """Record a message send; returns the clock to piggyback on it."""
        with self._lock:
            self._tick(rank)
            return dict(self._clock(rank))

    def on_deliver(self, rank: int, clock: dict[int, int] | None) -> None:
        """Join a delivered message's piggybacked clock into ``rank``."""
        if clock is None:
            return
        with self._lock:
            merge_clocks(self._clock(rank), clock)
            self._tick(rank)

    def on_collective_enter(self, rank: int) -> dict[int, int]:
        """Record collective entry; returns the clock to contribute."""
        return self.on_send(rank)

    def on_collective_exit(self, rank: int, clocks) -> None:
        """Join every participant's contributed clock into ``rank``.

        ``clocks`` is the iterable of clock snapshots gathered by the
        rendezvous -- after the join, everything any rank did before the
        collective happens-before everything after it (the barrier HB
        semantics CC003 statically assumes).
        """
        with self._lock:
            mine = self._clock(rank)
            for c in clocks:
                if c is not None:
                    merge_clocks(mine, c)
            self._tick(rank)

    # -- tracked accesses -----------------------------------------------

    def read(self, label: str, rank: int, locks=(), site: str = "") -> None:
        """Record a read of shared location ``label`` by ``rank``."""
        self._record(label, rank, False, locks, site)

    def write(self, label: str, rank: int, locks=(), site: str = "") -> None:
        """Record a write of shared location ``label`` by ``rank``."""
        self._record(label, rank, True, locks, site)

    def _record(self, label: str, rank: int, is_write: bool, locks,
                site: str) -> None:
        found: list[Violation] = []
        with self._lock:
            self.report.checks_run += 1
            clock = self._clock(rank)
            epoch = self._tick(rank)
            acc = _Access(rank=rank, epoch=epoch,
                          locks=frozenset(locks), site=site)
            loc = self._locations.setdefault(label, _Location())
            prior = []
            if loc.last_write is not None:
                prior.append(("write", loc.last_write))
            if is_write:
                prior.extend(("read", a) for a in loc.reads.values())
            for prior_kind, p in prior:
                if p.rank == rank:
                    continue
                if p.happened_before(clock):
                    continue
                if p.locks & acc.locks:
                    continue  # lockset fallback: commonly locked
                kind = "write" if is_write else "read"
                found.append(Violation(
                    path=site or f"runtime:{label}", line=0, col=0,
                    rule=RACE_RULE,
                    message=(
                        f"data race on {label}: {kind} by rank {rank} is "
                        f"concurrent with {prior_kind} by rank {p.rank} "
                        f"(no happens-before edge, no common lock"
                        + (f"; prior site {p.site}" if p.site else "")
                        + ")"
                    ),
                ))
            if is_write:
                loc.last_write = acc
                loc.reads = {}
            else:
                loc.reads[rank] = acc
            self.report.violations.extend(found)
        self._handle(found)

    def on_deadlock(self, description: str, site: str = "") -> Violation:
        """Record a watchdog-diagnosed deadlock (CC102); returns it.

        Always records (never raises): the communicator raises its own
        :class:`~repro.cluster.mpi_sim.DeadlockError` carrying the full
        pending-op dump, and the finding here surfaces the event on the
        report/scorecard.
        """
        v = Violation(
            path=site or "runtime:world", line=0, col=0,
            rule=DEADLOCK_RULE, message=description,
        )
        with self._lock:
            self.report.checks_run += 1
            self.report.violations.append(v)
        return v

    # -- policy ----------------------------------------------------------

    def _handle(self, found: list[Violation]) -> None:
        if not found:
            return
        if self.policy == "raise":
            raise ConcurrencyViolationError(found)
        for v in found:
            warnings.warn(v.message, ConcurrencyWarning, stacklevel=4)


def make_tracker(policy: str) -> RaceTracker | None:
    """Returns a tracker for ``policy``, or ``None`` for ``"off"``.

    Returning ``None`` (rather than a no-op object) keeps the ``off``
    policy free of per-message overhead: the runtime's hook sites guard
    with a single ``if tracker is not None``.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown concurrency policy {policy!r}; choose from {POLICIES}"
        )
    if policy == "off":
        return None
    return RaceTracker(policy=policy)
