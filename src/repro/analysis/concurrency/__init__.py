"""Concurrency analysis of the cluster layer: comm-check + race detection.

Two cooperating passes over the same failure domain:

* :mod:`~repro.analysis.concurrency.commcheck` **statically** verifies
  the MPI protocol structure -- halo send/recv symmetry, uniform
  collective ordering, endpoint tag/dtype consistency (rules
  CC001..CC004);
* :mod:`~repro.analysis.concurrency.race` **dynamically** checks the
  thread-based runtime's shared state with a vector-clock
  happens-before tracker plus lockset fallback (CC101), and records
  watchdog-diagnosed deadlocks (CC102).

Both report plain :class:`~repro.analysis.lint.Violation` records in one
:class:`~repro.analysis.concurrency.report.ConcurrencyReport`, shown by
``python -m repro.analysis --concurrency`` and on the run scorecard.
"""

from .commcheck import (
    CommProgram,
    CommSite,
    ProgramRule,
    build_program,
    check_paths,
    check_program,
    check_sources,
    register_program_rule,
    registered_program_rules,
)
from .race import (
    DEADLOCK_RULE,
    POLICIES,
    RACE_RULE,
    ConcurrencyViolationError,
    ConcurrencyWarning,
    RaceTracker,
    make_tracker,
)
from .report import ConcurrencyReport

__all__ = [
    "CommProgram",
    "CommSite",
    "ConcurrencyReport",
    "ConcurrencyViolationError",
    "ConcurrencyWarning",
    "DEADLOCK_RULE",
    "POLICIES",
    "ProgramRule",
    "RACE_RULE",
    "RaceTracker",
    "build_program",
    "check_paths",
    "check_program",
    "check_sources",
    "make_tracker",
    "register_program_rule",
    "registered_program_rules",
]
