"""comm-check: static verification of the cluster layer's MPI protocol.

The paper's cluster layer is correct only if three structural properties
hold on *every* rank of the SPMD program (SC13 Section 6):

1. **halo symmetry** -- every non-blocking face send has a matching
   receive for the same ``(neighbor, tag)`` edge on the peer rank;
2. **uniform collectives** -- reductions, scans and barriers are issued
   in identical order on all ranks, so no collective (or call into a
   collective-performing function) may sit under a rank-dependent
   conditional;
3. **endpoint consistency** -- the two ends of a point-to-point edge
   agree on the message tag and payload dtype.

comm-check proves these properties *statically*.  It parses the analyzed
files into the lint engine's :class:`~repro.analysis.lint.SourceFile`
representation, extracts a per-rank **communication skeleton** -- every
``comm.send/isend/recv/irecv`` and collective call site, with symbolic
peer, tag and payload-dtype arguments -- and then runs whole-program
rules over the skeleton.

Because ranks execute the same program, symmetry is checked on the
skeleton itself: the set of tags a rank can post must equal the set of
tags a rank can wait for.  Tags are made concrete by a bounded abstract
interpreter that

* enumerates enclosing ``for`` loops over literal ``range(...)`` /
  tuple iterables (the halo code's ``for axis in range(3): for side in
  (-1, 1)``),
* prunes enumerated bindings through statically decidable enclosing
  ``if`` guards,
* inlines module-level pure helper functions (single ``return``
  expression, e.g. ``_face_tag``), and
* substitutes through one level of wrapper calls when a tag/peer is a
  parameter of the enclosing function (e.g. ``HaloExchange._send_frame``).

Whatever cannot be decided statically is treated conservatively: an
un-enumerable tag matches everything, so comm-check reports **zero
findings on correct-but-dynamic protocols** and flags only provable
asymmetries.

Findings are ordinary :class:`~repro.analysis.lint.Violation` records
under CC-series rule ids (CC001..CC004), honor ``# lint: disable=CC...``
pragmas, and accumulate in the shared
:class:`~repro.analysis.concurrency.report.ConcurrencyReport`.  Run it
with ``python -m repro.analysis --concurrency [paths]``.
"""

from __future__ import annotations

import ast
import copy
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..lint import SourceFile, Violation, iter_python_files
from .report import ConcurrencyReport

#: Method names of the communicator API, by role (mpi4py conventions:
#: lowercase = python objects, capitalized = NumPy arrays).
SEND_METHODS = frozenset({"send", "isend", "Send", "Isend"})
RECV_METHODS = frozenset({"recv", "irecv", "Recv", "Irecv"})
COLLECTIVE_METHODS = frozenset({
    "barrier", "allreduce", "bcast", "gather", "allgather", "exscan",
    "reduce", "scatter", "scan", "alltoall",
})

#: Wildcard marker for peers/tags (``ANY_SOURCE`` / ``ANY_TAG`` / -1).
ANY = "<any>"

#: Bound on enumerated binding combinations per call site -- protocols
#: with larger literal iteration spaces degrade to "not enumerable"
#: rather than blowing up the analysis.
MAX_COMBOS = 512

#: Bound on wrapper call sites substituted per unresolved comm op.
MAX_CALL_SITES = 20


def _is_comm_receiver(expr: ast.expr) -> bool:
    """Is ``expr`` a communicator object reference (``comm``, ``self.comm``)?

    Matching is by name convention: the receiver's dotted path must end
    in a ``comm``-named component.  This keeps the communicator's *own*
    implementation (``self.send(...)`` inside ``SimComm``) out of the
    skeleton.
    """
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse failure  # lint: disable=CL005
        return False
    last = text.split(".")[-1]
    return last == "comm" or last.endswith("_comm")


class _NotStatic(Exception):
    """An expression could not be evaluated statically."""


@dataclass(frozen=True)
class CommSite:
    """One communication call site of the extracted skeleton."""

    kind: str  #: "send" | "recv" | "collective"
    method: str  #: communicator method name at the site
    path: str
    line: int
    col: int
    func: str  #: bare name of the enclosing function ("" = module level)
    peer: str  #: canonical dest/source text; :data:`ANY` for wildcards
    tag_text: str  #: canonical tag expression text; :data:`ANY` for wildcards
    tags: frozenset[int] | None  #: enumerated concrete tags (None = dynamic)
    rank_conditions: tuple[str, ...]  #: enclosing rank-dependent tests
    dtype: str | None  #: payload dtype evidence, when derivable


@dataclass(frozen=True)
class LocalCall:
    """A call to a locally defined function (for interprocedural checks)."""

    callee: str
    path: str
    line: int
    col: int
    caller: str
    rank_conditions: tuple[str, ...]


@dataclass
class CommProgram:
    """The whole-program communication skeleton comm-check rules consume."""

    sources: dict[str, SourceFile] = field(default_factory=dict)
    sites: list[CommSite] = field(default_factory=list)
    local_calls: list[LocalCall] = field(default_factory=list)
    #: bare names of locally defined functions that (transitively)
    #: execute a collective operation
    collective_bearing: set[str] = field(default_factory=set)

    def sends(self) -> list[CommSite]:
        """Returns the point-to-point send sites (list)."""
        return [s for s in self.sites if s.kind == "send"]

    def recvs(self) -> list[CommSite]:
        """Returns the point-to-point receive sites (list)."""
        return [s for s in self.sites if s.kind == "recv"]

    def collectives(self) -> list[CommSite]:
        """Returns the collective call sites (list)."""
        return [s for s in self.sites if s.kind == "collective"]


# -- static expression evaluation ----------------------------------------


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


def _eval_static(node: ast.expr, env: dict, funcs: dict, depth: int = 0):
    """Evaluate a side-effect-free expression statically.

    ``env`` binds names to constants; ``funcs`` maps local pure-function
    names to ``(params, return_expr)`` for inlining.  Raises
    :class:`_NotStatic` for anything outside the supported fragment.
    Returns the evaluated python value.
    """
    if depth > 8:
        raise _NotStatic("recursion bound")
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        raise _NotStatic(node.id)
    if isinstance(node, ast.UnaryOp):
        v = _eval_static(node.operand, env, funcs, depth + 1)
        if isinstance(node.op, ast.USub):
            return -v
        if isinstance(node.op, ast.UAdd):
            return +v
        if isinstance(node.op, ast.Not):
            return not v
        raise _NotStatic("unary op")
    if isinstance(node, ast.BinOp):
        fn = _BINOPS.get(type(node.op))
        if fn is None:
            raise _NotStatic("binop")
        return fn(
            _eval_static(node.left, env, funcs, depth + 1),
            _eval_static(node.right, env, funcs, depth + 1),
        )
    if isinstance(node, ast.BoolOp):
        vals = [_eval_static(v, env, funcs, depth + 1) for v in node.values]
        if isinstance(node.op, ast.And):
            result = True
            for v in vals:
                result = v
                if not v:
                    break
            return result
        result = False
        for v in vals:
            result = v
            if v:
                break
        return result
    if isinstance(node, ast.Compare):
        left = _eval_static(node.left, env, funcs, depth + 1)
        for op, comparator in zip(node.ops, node.comparators):
            fn = _CMPOPS.get(type(op))
            if fn is None:
                raise _NotStatic("compare op")
            right = _eval_static(comparator, env, funcs, depth + 1)
            if not fn(left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.IfExp):
        test = _eval_static(node.test, env, funcs, depth + 1)
        branch = node.body if test else node.orelse
        return _eval_static(branch, env, funcs, depth + 1)
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name is not None and name in funcs:
            params, ret = funcs[name]
            bound: dict = {}
            for p, a in zip(params, node.args):
                bound[p] = _eval_static(a, env, funcs, depth + 1)
            for kw in node.keywords:
                if kw.arg is None or kw.arg not in params:
                    raise _NotStatic("call keywords")
                bound[kw.arg] = _eval_static(kw.value, env, funcs, depth + 1)
            if len(bound) != len(params):
                raise _NotStatic("unbound params")
            return _eval_static(ret, bound, funcs, depth + 1)
        raise _NotStatic("call")
    raise _NotStatic(type(node).__name__)


def _free_names(node: ast.expr) -> set[str]:
    """Names referenced anywhere inside an expression (set of str)."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _Subst(ast.NodeTransformer):
    """Substitute parameter names with caller argument expressions."""

    def __init__(self, mapping: dict[str, ast.expr]):
        self.mapping = mapping

    def visit_Name(self, node: ast.Name):  # noqa: N802 (ast API)
        """Returns the replacement expression for mapped names (ast.expr)."""
        if node.id in self.mapping:
            return copy.deepcopy(self.mapping[node.id])
        return node


def _substituted(expr: ast.expr, mapping: dict[str, ast.expr]) -> ast.expr:
    """Returns a copy of ``expr`` with parameter names substituted."""
    return ast.fix_missing_locations(_Subst(mapping).visit(copy.deepcopy(expr)))


# -- per-file context ----------------------------------------------------


class _FileContext:
    """Extraction context of one parsed file.

    Collects the module-level constant environment, the inlineable pure
    helper functions, a parent map, and the function table.
    """

    def __init__(self, source: SourceFile):
        self.source = source
        self.parents = source.parents()
        self.consts: dict[str, object] = {}
        self.pure_funcs: dict[str, tuple[list[str], ast.expr]] = {}
        self.functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        for node in source.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name) and isinstance(node.value, ast.Constant):
                    self.consts[t.id] = node.value.value
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.append(node)
                pure = self._pure_return(node)
                if pure is not None:
                    self.pure_funcs[node.name] = pure

    @staticmethod
    def _pure_return(fn) -> tuple[list[str], ast.expr] | None:
        """``(params, return_expr)`` for single-return helpers, else None."""
        body = [
            s for s in fn.body
            if not (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
        ]
        if len(body) != 1 or not isinstance(body[0], ast.Return):
            return None
        if body[0].value is None:
            return None
        params = [a.arg for a in fn.args.args]
        return params, body[0].value

    def enclosing_function(self, node: ast.AST):
        """The nearest enclosing def (lambdas are transparent), or None."""
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def context_of(self, node: ast.AST):
        """Ancestry-derived context of a call site.

        Returns ``(bindings, guards, rank_conditions)`` where
        ``bindings`` maps enumerable loop variables to their literal
        values, ``guards`` is a list of ``(test, polarity)`` for
        enclosing ``if``/ternary branches, and ``rank_conditions`` the
        unparsed tests that mention a rank.
        """
        bindings: dict[str, list] = {}
        guards: list[tuple[ast.expr, bool]] = []
        rank_conditions: list[str] = []
        prev: ast.AST = node
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.For):
                values = self._literal_iter(cur.iter)
                if (
                    values is not None
                    and isinstance(cur.target, ast.Name)
                    and cur.target.id not in bindings
                ):
                    bindings[cur.target.id] = values
            elif isinstance(cur, (ast.If, ast.IfExp)):
                body = cur.body if isinstance(cur.body, list) else [cur.body]
                orelse = cur.orelse if isinstance(cur.orelse, list) else [cur.orelse]
                if prev in body:
                    guards.append((cur.test, True))
                elif prev in orelse:
                    guards.append((cur.test, False))
                if prev is not cur.test and self._mentions_rank(cur.test):
                    rank_conditions.append(ast.unparse(cur.test))
            elif isinstance(cur, ast.While):
                if prev in cur.body and self._mentions_rank(cur.test):
                    rank_conditions.append(ast.unparse(cur.test))
            prev, cur = cur, self.parents.get(cur)
        return bindings, guards, tuple(rank_conditions)

    @staticmethod
    def _literal_iter(it: ast.expr) -> list | None:
        """The literal values of an enumerable loop iterable, or None."""
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and 1 <= len(it.args) <= 3
            and not it.keywords
        ):
            try:
                args = [_eval_static(a, {}, {}) for a in it.args]
            except _NotStatic:
                return None
            if all(isinstance(a, int) for a in args):
                values = list(range(*args))
                return values if len(values) <= MAX_COMBOS else None
            return None
        if isinstance(it, (ast.Tuple, ast.List)):
            try:
                return [_eval_static(e, {}, {}) for e in it.elts]
            except _NotStatic:
                return None
        return None

    @staticmethod
    def _mentions_rank(test: ast.expr) -> bool:
        """Does a conditional test reference a rank identity?"""
        for n in ast.walk(test):
            if isinstance(n, ast.Name) and n.id == "rank":
                return True
            if isinstance(n, ast.Attribute) and n.attr == "rank":
                return True
        return False

    def enumerate_expr(
        self,
        expr: ast.expr,
        bindings: dict[str, list],
        guards: list[tuple[ast.expr, bool]],
        extra_funcs: dict | None = None,
    ) -> frozenset | None:
        """Concrete values of ``expr`` over the binding space, or None.

        Guard tests that evaluate statically prune the binding space
        (combinations on dead branches do not contribute); guards that
        cannot be decided are ignored (conservative over-approximation).
        Returns ``None`` when the expression is not statically
        enumerable.
        """
        funcs = dict(self.pure_funcs)
        if extra_funcs:
            funcs.update(extra_funcs)
        relevant = _free_names(expr)
        for test, _pol in guards:
            relevant |= _free_names(test)
        names = [n for n in relevant if n in bindings]
        spaces = [bindings[n] for n in names]
        total = 1
        for s in spaces:
            total *= max(1, len(s))
        if total > MAX_COMBOS:
            return None
        values = set()
        for combo in itertools.product(*spaces) if names else [()]:
            env = dict(self.consts)
            env.update(dict(zip(names, combo)))
            alive = True
            for test, pol in guards:
                try:
                    holds = bool(_eval_static(test, env, funcs))
                except _NotStatic:
                    continue
                if holds != pol:
                    alive = False
                    break
            if not alive:
                continue
            try:
                values.add(_eval_static(expr, env, funcs))
            except _NotStatic:
                return None
        return frozenset(values)


# -- skeleton extraction -------------------------------------------------


@dataclass
class _RawOp:
    """A comm call site before peer/tag resolution."""

    ctx: _FileContext
    call: ast.Call
    kind: str
    method: str
    peer_ast: ast.expr | None
    tag_ast: ast.expr | None
    payload_ast: ast.expr | None


def _arg_or_kw(call: ast.Call, index: int, name: str) -> ast.expr | None:
    """Positional-or-keyword argument of a call, or None if absent."""
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _raw_ops(ctx: _FileContext) -> Iterator[_RawOp]:
    """Yield every communicator call site of one file."""
    for node in ast.walk(ctx.source.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if not _is_comm_receiver(node.func.value):
            continue
        if method in SEND_METHODS:
            yield _RawOp(ctx, node, "send", method,
                         peer_ast=_arg_or_kw(node, 1, "dest"),
                         tag_ast=_arg_or_kw(node, 2, "tag"),
                         payload_ast=_arg_or_kw(node, 0, "obj"))
        elif method in RECV_METHODS:
            yield _RawOp(ctx, node, "recv", method,
                         peer_ast=_arg_or_kw(node, 0, "source"),
                         tag_ast=_arg_or_kw(node, 1, "tag"),
                         payload_ast=None)
        elif method in COLLECTIVE_METHODS:
            yield _RawOp(ctx, node, "collective", method,
                         peer_ast=None, tag_ast=None, payload_ast=None)


def _is_wildcard(expr: ast.expr | None) -> bool:
    """Is a peer/tag expression the mpi wildcard (absent, -1, ANY_*)?"""
    if expr is None:
        return True
    if isinstance(expr, ast.Constant) and expr.value == -1:
        return True
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        op = expr.operand
        return isinstance(op, ast.Constant) and op.value == 1
    if isinstance(expr, ast.Name) and expr.id in ("ANY_SOURCE", "ANY_TAG"):
        return True
    if isinstance(expr, ast.Attribute) and expr.attr in ("ANY_SOURCE", "ANY_TAG"):
        return True
    return False


def _canonical(expr: ast.expr | None) -> str:
    """Canonical display text of a peer/tag expression (str)."""
    if expr is None:
        return ANY
    text = ast.unparse(expr)
    return text[5:] if text.startswith("self.") else text


def _dtype_name(node: ast.expr) -> str | None:
    """Canonical dtype name of a dtype-valued expression, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _dtype_in_expr(expr: ast.expr) -> str | None:
    """Payload dtype evidence inside an expression subtree, or None."""
    for n in ast.walk(expr):
        if isinstance(n, ast.keyword) and n.arg == "dtype":
            name = _dtype_name(n.value)
            if name is not None:
                return name
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "astype"
            and n.args
        ):
            name = _dtype_name(n.args[0])
            if name is not None:
                return name
    return None


def _local_dtype_of(ctx: _FileContext, fn, name: str) -> str | None:
    """Dtype evidence from ``name = ...`` assignments in ``fn``, or None."""
    if fn is None:
        return None
    found = None
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name) and t.id == name:
                evidence = _dtype_in_expr(node.value)
                if evidence is not None:
                    found = evidence
    return found


def _send_dtype(ctx: _FileContext, op: _RawOp) -> str | None:
    """Payload dtype evidence of a send site, or None."""
    if op.payload_ast is None:
        return None
    direct = _dtype_in_expr(op.payload_ast)
    if direct is not None:
        return direct
    if isinstance(op.payload_ast, ast.Name):
        fn = ctx.enclosing_function(op.call)
        return _local_dtype_of(ctx, fn, op.payload_ast.id)
    return None


def _recv_dtype(ctx: _FileContext, op: _RawOp) -> str | None:
    """Destination-buffer dtype evidence of a receive site, or None.

    Recognizes the fill idiom ``buf[...] = comm.recv(...)`` where
    ``buf`` was constructed with an explicit ``dtype=`` in the same
    function.
    """
    parent = ctx.parents.get(op.call)
    if not isinstance(parent, ast.Assign) or len(parent.targets) != 1:
        return None
    target = parent.targets[0]
    if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
        fn = ctx.enclosing_function(op.call)
        return _local_dtype_of(ctx, fn, target.value.id)
    return None


def _resolve_site(
    ctx: _FileContext,
    op: _RawOp,
    contexts: dict[str, _FileContext],
) -> list[CommSite]:
    """Resolve one raw op into concrete skeleton sites.

    Peer/tag expressions that are parameters of the enclosing function
    are substituted through each call site of that function (one level),
    so thin wrappers like ``HaloExchange._send_frame`` do not hide the
    protocol from the analysis.  Returns one :class:`CommSite` per
    resolution (a wrapper called from N places yields up to N sites).
    """
    fn = ctx.enclosing_function(op.call)
    fn_name = fn.name if fn is not None else ""
    bindings, guards, rank_conds = ctx.context_of(op.call)
    line, col = op.call.lineno, op.call.col_offset + 1

    def build(tag_ast, peer_ast, extra_ctx: _FileContext | None = None,
              extra_bindings=None, extra_guards=None, extra_conds=()):
        eval_ctx = extra_ctx or ctx
        b = dict(extra_bindings or {})
        b.update(bindings)
        g = list(guards) + list(extra_guards or [])
        if op.kind == "collective":
            tags, tag_text = None, ANY
        elif _is_wildcard(tag_ast):
            tags, tag_text = None, ANY
        else:
            tags = eval_ctx.enumerate_expr(tag_ast, b, g,
                                           extra_funcs=ctx.pure_funcs)
            tag_text = _canonical(tag_ast)
        if op.kind == "collective":
            peer = ANY
        elif _is_wildcard(peer_ast):
            peer = ANY
        else:
            peer = _canonical(peer_ast)
        return CommSite(
            kind=op.kind, method=op.method, path=ctx.source.path,
            line=line, col=col, func=fn_name, peer=peer,
            tag_text=tag_text, tags=tags,
            rank_conditions=tuple(rank_conds) + tuple(extra_conds),
            dtype=_send_dtype(ctx, op) if op.kind == "send" else (
                _recv_dtype(ctx, op) if op.kind == "recv" else None),
        )

    site = build(op.tag_ast, op.peer_ast)
    needs_subst = (
        fn is not None
        and op.kind in ("send", "recv")
        and site.tags is None
        and site.tag_text is not ANY
    )
    if needs_subst:
        params = [a.arg for a in fn.args.args]
        unresolved = _free_names(op.tag_ast) & set(params)
        if unresolved:
            derived = _substitute_through_callers(
                ctx, op, fn, params, contexts, build
            )
            if derived:
                return derived
    return [site]


def _substitute_through_callers(
    ctx: _FileContext,
    op: _RawOp,
    fn,
    params: list[str],
    contexts: dict[str, _FileContext],
    build,
) -> list[CommSite]:
    """Re-resolve a param-dependent op at each caller of its function."""
    out: list[CommSite] = []
    seen = 0
    for cctx in contexts.values():
        for node in ast.walk(cctx.source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            skip_self = False
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
                skip_self = params[:1] == ["self"]
            if name != fn.name:
                continue
            caller_fn = cctx.enclosing_function(node)
            if caller_fn is fn:
                continue  # recursion: do not substitute into itself
            seen += 1
            if seen > MAX_CALL_SITES:
                return out
            pos_params = params[1:] if skip_self else params
            mapping: dict[str, ast.expr] = {}
            for p, a in zip(pos_params, node.args):
                mapping[p] = a
            for kw in node.keywords:
                if kw.arg in params:
                    mapping[kw.arg] = kw.value
            tag_ast = _substituted(op.tag_ast, mapping)
            peer_ast = (
                _substituted(op.peer_ast, mapping)
                if op.peer_ast is not None else None
            )
            cbind, cguards, cconds = cctx.context_of(node)
            out.append(build(
                tag_ast, peer_ast, extra_ctx=cctx, extra_bindings=cbind,
                extra_guards=cguards, extra_conds=cconds,
            ))
    return out


def build_program(sources: dict[str, str]) -> CommProgram:
    """Build the communication skeleton of a set of source files.

    ``sources`` maps display paths to source text.  Files that fail to
    parse contribute nothing (the lint pass reports their CL000).
    Returns the populated :class:`CommProgram`.
    """
    program = CommProgram()
    contexts: dict[str, _FileContext] = {}
    for path, text in sources.items():
        try:
            sf = SourceFile(path, text)
        except SyntaxError:
            continue
        program.sources[path] = sf
        contexts[path] = _FileContext(sf)

    raw: list[tuple[_FileContext, _RawOp]] = []
    for ctx in contexts.values():
        for op in _raw_ops(ctx):
            raw.append((ctx, op))
    for ctx, op in raw:
        program.sites.extend(_resolve_site(ctx, op, contexts))

    # -- call graph over bare local function names ----------------------
    local_names = {
        fn.name for ctx in contexts.values() for fn in ctx.functions
    }
    callees: dict[str, set[str]] = {name: set() for name in local_names}
    direct: set[str] = set()
    for ctx in contexts.values():
        for fn in ctx.functions:
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name in local_names and name != fn.name:
                    callees[fn.name].add(name)
    for site in program.sites:
        if site.kind == "collective" and site.func:
            direct.add(site.func)

    bearing = set(direct)
    changed = True
    while changed:
        changed = False
        for name, called in callees.items():
            if name not in bearing and called & bearing:
                bearing.add(name)
                changed = True
    program.collective_bearing = bearing

    for ctx in contexts.values():
        for node in ast.walk(ctx.source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name not in local_names:
                continue
            caller = ctx.enclosing_function(node)
            _b, _g, conds = ctx.context_of(node)
            program.local_calls.append(LocalCall(
                callee=name, path=ctx.source.path, line=node.lineno,
                col=node.col_offset + 1,
                caller=caller.name if caller is not None else "",
                rank_conditions=conds,
            ))
    return program


# -- program rules -------------------------------------------------------


class ProgramRule:
    """Base class of whole-program comm-check rules (CC-series).

    Unlike per-file :class:`~repro.analysis.lint.Rule` subclasses, a
    program rule consumes the whole :class:`CommProgram` skeleton; it
    still reports plain :class:`~repro.analysis.lint.Violation` records.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(self, program: CommProgram) -> Iterable[Violation]:
        """Yield the rule's findings over the program skeleton."""
        raise NotImplementedError

    def violation(self, site, message: str) -> Violation:
        """Returns a :class:`Violation` anchored at a skeleton site."""
        return Violation(path=site.path, line=site.line, col=site.col,
                         rule=self.rule_id, message=message)


#: The open program-rule registry, keyed by rule id.
PROGRAM_REGISTRY: dict[str, type[ProgramRule]] = {}


def register_program_rule(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator adding a program rule to the registry."""
    if not cls.rule_id:
        raise ValueError(f"program rule {cls.__name__} has no rule_id")
    if cls.rule_id in PROGRAM_REGISTRY and PROGRAM_REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate program rule id {cls.rule_id}")
    PROGRAM_REGISTRY[cls.rule_id] = cls
    return cls


def registered_program_rules() -> list[type[ProgramRule]]:
    """Returns the registered program-rule classes in id order."""
    return [PROGRAM_REGISTRY[k] for k in sorted(PROGRAM_REGISTRY)]


def _tag_label(tags: Iterable[int]) -> str:
    """Compact display of a tag set (str)."""
    return ", ".join(str(t) for t in sorted(tags))


@register_program_rule
class UnmatchedSend(ProgramRule):
    """CC001: every posted send must have a matching receive.

    Under SPMD symmetry the set of tags any rank can post must be
    covered by the set of tags ranks wait for; a send whose enumerated
    tag no receive expects is a dropped-receive (the message is never
    consumed and its sender's peer deadlocks waiting on the reverse
    edge) or a mis-tagged endpoint.  Receives with dynamic or wildcard
    tags match everything (conservative).
    """

    rule_id = "CC001"
    name = "unmatched-send"
    description = (
        "p2p send whose (neighbor, tag) edge no receive in the program "
        "matches -- dropped or mis-tagged halo receive"
    )

    def check(self, program: CommProgram) -> Iterable[Violation]:
        recvs = program.recvs()
        recv_any = any(r.tags is None for r in recvs)
        covered: set[int] = set()
        for r in recvs:
            if r.tags is not None:
                covered |= set(r.tags)
        for s in program.sends():
            if not recvs:
                yield self.violation(
                    s, f"{s.method}(dest={s.peer}) has no receive anywhere "
                       "in the analyzed program",
                )
                continue
            if s.tags is None or recv_any:
                continue
            missing = set(s.tags) - covered
            if missing:
                yield self.violation(
                    s,
                    f"{s.method}(dest={s.peer}, tag={s.tag_text}) posts "
                    f"tag(s) {{{_tag_label(missing)}}} that no receive in "
                    "the program matches (dropped or mis-tagged recv "
                    "breaks halo send/recv symmetry)",
                )


@register_program_rule
class UnmatchedRecv(ProgramRule):
    """CC002: every posted receive must have a matching send.

    A receive whose enumerated tag no send can post blocks until the
    communicator timeout on every rank that executes it -- the static
    shadow of the deadlock the runtime watchdog reports.  Sends with
    dynamic tags match everything (conservative).
    """

    rule_id = "CC002"
    name = "unmatched-recv"
    description = (
        "p2p receive waiting for a (source, tag) edge no send in the "
        "program posts -- guaranteed stall"
    )

    def check(self, program: CommProgram) -> Iterable[Violation]:
        sends = program.sends()
        send_any = any(s.tags is None for s in sends)
        posted: set[int] = set()
        for s in sends:
            if s.tags is not None:
                posted |= set(s.tags)
        for r in program.recvs():
            if not sends:
                yield self.violation(
                    r, f"{r.method}(source={r.peer}) has no send anywhere "
                       "in the analyzed program",
                )
                continue
            if r.tags is None or send_any:
                continue
            missing = set(r.tags) - posted
            if missing:
                yield self.violation(
                    r,
                    f"{r.method}(source={r.peer}, tag={r.tag_text}) waits "
                    f"for tag(s) {{{_tag_label(missing)}}} that no send in "
                    "the program posts (unmatched edge: the wait can only "
                    "end in a timeout)",
                )


@register_program_rule
class RankDependentCollective(ProgramRule):
    """CC003: collectives must execute identically on every rank.

    A collective (or a call into a function that transitively performs
    one) under a rank-dependent conditional means some ranks enter the
    rendezvous and others do not -- the canonical SPMD deadlock.  The
    check is interprocedural: the call graph propagates
    "performs-a-collective" through locally defined functions.
    """

    rule_id = "CC003"
    name = "rank-dependent-collective"
    description = (
        "collective or barrier issued under a rank-dependent "
        "conditional -- collective order diverges across ranks"
    )

    def check(self, program: CommProgram) -> Iterable[Violation]:
        seen: set[tuple[str, int, int]] = set()
        for site in program.collectives():
            if site.rank_conditions:
                key = (site.path, site.line, site.col)
                if key in seen:
                    continue
                seen.add(key)
                yield self.violation(
                    site,
                    f"collective {site.method}() under rank-dependent "
                    f"condition {site.rank_conditions[0]!r}; every rank "
                    "must issue the same collectives in the same order",
                )
        for call in program.local_calls:
            if not call.rank_conditions:
                continue
            if call.callee not in program.collective_bearing:
                continue
            key = (call.path, call.line, call.col)
            if key in seen:
                continue
            seen.add(key)
            yield Violation(
                path=call.path, line=call.line, col=call.col,
                rule=self.rule_id,
                message=(
                    f"call to {call.callee}() (which performs collectives) "
                    f"under rank-dependent condition "
                    f"{call.rank_conditions[0]!r}; the collective order "
                    "diverges across ranks"
                ),
            )


@register_program_rule
class EndpointDtypeMismatch(ProgramRule):
    """CC004: matched endpoints must agree on the payload dtype.

    When both ends of a tag-matched edge carry static dtype evidence --
    an explicit ``dtype=`` on the sent buffer and on the receive-side
    destination buffer -- the two must name the same dtype; a mismatch
    reinterprets bytes across the storage/compute precision boundary.
    """

    rule_id = "CC004"
    name = "endpoint-dtype-mismatch"
    description = (
        "send and tag-matched receive carry conflicting payload-dtype "
        "evidence"
    )

    def check(self, program: CommProgram) -> Iterable[Violation]:
        sends = [s for s in program.sends() if s.dtype is not None]
        for r in program.recvs():
            if r.dtype is None:
                continue
            for s in sends:
                if s.tags is not None and r.tags is not None:
                    if not set(s.tags) & set(r.tags):
                        continue
                elif s.tag_text != r.tag_text:
                    continue
                if s.dtype != r.dtype:
                    yield self.violation(
                        r,
                        f"receive buffer dtype {r.dtype} != sent payload "
                        f"dtype {s.dtype} ({s.path}:{s.line}); endpoints "
                        "of one edge must agree on the payload dtype",
                    )


# -- entry points --------------------------------------------------------


def check_program(program: CommProgram) -> ConcurrencyReport:
    """Run every registered program rule; returns the report.

    Violations honor ``# lint: disable=CCxxx`` pragmas in the analyzed
    sources; ``checks_run`` counts (site, rule) pairs examined.
    """
    report = ConcurrencyReport()
    rules = [cls() for cls in registered_program_rules()]
    report.checks_run = len(program.sites) * len(rules)
    out: list[Violation] = []
    for rule in rules:
        for v in rule.check(program):
            source = program.sources.get(v.path)
            if source is not None and source.disabled(v.rule, v.line):
                continue
            out.append(v)
    report.violations = sorted(set(out))
    return report


def check_sources(sources: dict[str, str]) -> ConcurrencyReport:
    """comm-check a mapping of display path -> source text (report)."""
    return check_program(build_program(sources))


def check_paths(paths: Iterable[str | Path]) -> ConcurrencyReport:
    """comm-check every python file under ``paths``; returns the report."""
    sources = {
        str(f): f.read_text(encoding="utf-8") for f in iter_python_files(paths)
    }
    return check_sources(sources)
