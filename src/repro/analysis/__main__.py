"""``python -m repro.analysis`` -- run the solver-aware linter."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
