"""Solver-aware static analysis and runtime numerics sanitation.

The paper's performance story rests on contracts this package enforces by
machine instead of by convention:

* **mixed precision** -- float32 AoS block *storage*, float64 SoA
  *compute* (paper Section 5), expressed through ``STORAGE_DTYPE`` /
  ``COMPUTE_DTYPE`` in :mod:`repro.physics.state`;
* **stencil geometry** -- the WENO5 ghost width of exactly
  :data:`repro.core.block.GHOSTS` cells and the 6-slice ring buffers of
  :data:`repro.core.ringbuffer.RING_DEPTH`;
* **numerical sanity** -- the quasi-conservative (Gamma, Pi) advection
  must never produce NaN/Inf, negative density or negative pressure
  mid-collapse.

Three parts:

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` --
  ``cubism-lint``, an AST-based checker with a pluggable rule registry
  (rules CL001..CL011) and ``# lint: disable=RULE`` pragmas.  Run it as
  ``python -m repro.analysis src/repro`` (or the ``cubism-lint`` script).
* :mod:`repro.analysis.sanitizer` -- :class:`NumericsSanitizer`, a
  runtime checker with an off / warn / raise policy that hooks into the
  core kernels, the time stepper and the cluster driver, accumulating a
  per-run :class:`ViolationReport`.
* :mod:`repro.analysis.concurrency` -- the cluster layer's concurrency
  analysis: **comm-check**, a static whole-program MPI protocol verifier
  (rules CC001..CC004, ``python -m repro.analysis --concurrency``), and
  a dynamic vector-clock race detector + deadlock watchdog for the
  thread-based runtime (CC101/CC102, ``--concurrency-check`` on runs).
* :mod:`repro.analysis.perfcheck` -- **kernel-check**, a static hot-path
  performance analyzer (rules CP001..CP006, ``python -m repro.analysis
  --perf``) that certifies the declared hot-path kernels for compiled
  backends and emits the machine-readable ``kernel_manifest.json``.
* :mod:`repro.analysis.syscheck` -- **sys-check**, a static
  resource-lifecycle and process-safety analyzer for the multi-process
  layers (rules RS001..RS007, ``python -m repro.analysis --sys``), plus
  :class:`ResourceLedger`, the runtime leak sanitizer the test suite
  wraps around every cluster/service/chaos test.

``python -m repro.analysis --all`` runs all four static families in one
pass and emits a single merged report with a worst-of exit code.

See ``docs/analysis.md`` for the full rule catalogue and usage.
"""

from __future__ import annotations

from .concurrency import (
    ConcurrencyReport,
    ConcurrencyViolationError,
    ConcurrencyWarning,
    RaceTracker,
    check_paths,
    check_sources,
    make_tracker,
    registered_program_rules,
)
from .lint import (
    LintConfig,
    Rule,
    SourceFile,
    Violation,
    format_violations,
    lint_paths,
    lint_source,
    registered_rules,
)
from .perfcheck import (
    HOT_KERNELS,
    KernelSpec,
    PerfReport,
    build_kernel_manifest,
    registered_perf_rules,
    write_kernel_manifest,
)
from .perfcheck import check_paths as perf_check_paths
from .perfcheck import check_sources as perf_check_sources
from .syscheck import (
    LeakError,
    ResourceLedger,
    SysReport,
    registered_sys_rules,
)
from .syscheck import check_paths as sys_check_paths
from .syscheck import check_sources as sys_check_sources
from .sanitizer import (
    POLICIES,
    NumericsSanitizer,
    NumericsViolation,
    NumericsViolationError,
    NumericsWarning,
    ViolationReport,
    make_sanitizer,
)

# Importing the rule catalogue populates the registry as a side effect.
from . import rules as _rules  # noqa: F401  (registry population)

__all__ = [
    "ConcurrencyReport",
    "ConcurrencyViolationError",
    "ConcurrencyWarning",
    "RaceTracker",
    "check_paths",
    "check_sources",
    "make_tracker",
    "registered_program_rules",
    "HOT_KERNELS",
    "KernelSpec",
    "PerfReport",
    "build_kernel_manifest",
    "perf_check_paths",
    "perf_check_sources",
    "registered_perf_rules",
    "write_kernel_manifest",
    "LeakError",
    "ResourceLedger",
    "SysReport",
    "registered_sys_rules",
    "sys_check_paths",
    "sys_check_sources",
    "LintConfig",
    "Rule",
    "SourceFile",
    "Violation",
    "format_violations",
    "lint_paths",
    "lint_source",
    "registered_rules",
    "POLICIES",
    "NumericsSanitizer",
    "NumericsViolation",
    "NumericsViolationError",
    "NumericsWarning",
    "ViolationReport",
    "make_sanitizer",
]
