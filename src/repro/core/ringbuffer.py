"""Ring buffers of 2D slices for the RHS z-sweep.

The paper's RHS kernel never materializes a padded 3D temporary per
quantity: it streams 2D z-slices through small ring buffers (6 slices per
flow quantity, Section 6 "Enhancing ILP") so that the working set stays
cache-resident.  :class:`SliceRing` reproduces that structure: a fixed
capacity circular store of equally-shaped slices with O(1) push and
indexed access from the oldest entry.
"""

from __future__ import annotations

import numpy as np

from ..physics.state import COMPUTE_DTYPE

#: Ring depth required by the WENO5 z-stencil: a face needs 6 consecutive
#: slices (paper: "the ring buffer ... contains 6 slices").
RING_DEPTH = 6


class SliceRing:
    """Fixed-capacity ring of preallocated 2D (or SoA-2D) slices.

    Unlike ``collections.deque`` the storage is preallocated once and
    reused -- pushing copies into the oldest slot, exactly like the
    paper's per-thread ring buffers.  Slices are indexed from the oldest
    (``ring[0]``) to the newest (``ring[len(ring)-1]``).
    """

    def __init__(self, slice_shape: tuple[int, ...], depth: int = RING_DEPTH, dtype=COMPUTE_DTYPE):
        if depth < 1:
            raise ValueError("ring depth must be positive")
        self.depth = depth
        self.slice_shape = tuple(slice_shape)
        self._store = np.empty((depth,) + self.slice_shape, dtype=dtype)
        self._count = 0  #: total slices ever pushed

    def __len__(self) -> int:
        return min(self._count, self.depth)

    @property
    def full(self) -> bool:
        return self._count >= self.depth

    def push(self, slice_data: np.ndarray) -> np.ndarray:
        """Copy ``slice_data`` into the next slot; returns the slot view."""
        if slice_data.shape != self.slice_shape:
            raise ValueError(
                f"slice shape {slice_data.shape} != ring shape {self.slice_shape}"
            )
        slot = self._store[self._count % self.depth]
        slot[...] = slice_data
        self._count += 1
        return slot

    def push_slot(self) -> np.ndarray:
        """Return the next slot for in-place filling (zero-copy push).

        The caller must write the slot *before* the next ``push``/
        ``push_slot`` call.
        """
        slot = self._store[self._count % self.depth]
        self._count += 1
        return slot

    def __getitem__(self, i: int) -> np.ndarray:
        """The ``i``-th oldest live slice (``i = 0`` is the oldest)."""
        live = len(self)
        if not -live <= i < live:
            raise IndexError(f"ring index {i} out of range for {live} live slices")
        if i < 0:
            i += live
        oldest = self._count - live
        return self._store[(oldest + i) % self.depth]

    def window(self) -> list[np.ndarray]:
        """All live slices, oldest first."""
        return [self[i] for i in range(len(self))]

    def nbytes(self) -> int:
        """Memory footprint -- the paper budgets ~250 KB of rings per thread."""
        return self._store.nbytes

    def reset(self) -> None:
        self._count = 0
