"""Low-storage time integration (paper Section 5, "Key decisions").

The paper advances cell averages with a third-order low-storage TVD
Runge-Kutta scheme (Williamson 1980) to minimize the memory footprint:
only one extra register ``S`` per quantity is kept besides the state,

    S <- a_k * S + dt * RHS(U),    U <- U + b_k * S.

:class:`LowStorageRK3` provides the classical Williamson coefficients;
:class:`ForwardEuler` is the one-stage ablation baseline (used by the
ablation benches to quantify the time-to-solution benefit of the
higher-order scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RKStage:
    """Coefficients of one low-storage stage."""

    a: float
    b: float


class TimeStepper:
    """Base class: a named sequence of 2N-storage stages."""

    name: str = "base"
    order: int = 0
    stages: tuple[RKStage, ...] = ()

    def advance(self, U: np.ndarray, rhs_fn, dt: float,
                sanitizer=None, tracer=None) -> np.ndarray:
        """Array-level convenience driver (used by tests and examples).

        ``rhs_fn(U) -> dU/dt`` must accept and return arrays shaped like
        ``U``; returns the advanced state (same shape and dtype as ``U``).
        Block-based production runs are orchestrated by the cluster driver
        instead, which interleaves ghost exchange between stages; the
        arithmetic is identical.  ``sanitizer`` is an optional
        :class:`repro.analysis.sanitizer.NumericsSanitizer` checked after
        every stage; ``tracer`` is an optional
        :class:`repro.telemetry.Tracer` that records per-stage RHS/UP
        spans and cell-update counters.
        """
        U = U.copy()
        S = np.zeros_like(U)
        for si, stage in enumerate(self.stages):
            if tracer is not None:
                with tracer.span("RHS"):
                    R = rhs_fn(U)
                with tracer.span("UP"):
                    S *= stage.a
                    S += dt * R
                    U += stage.b * S
                tracer.count("rhs_cell_updates", U[..., 0].size
                             if U.ndim > 1 else U.size)
                tracer.count("up_cell_updates", U[..., 0].size
                             if U.ndim > 1 else U.size)
            else:
                S *= stage.a
                S += dt * rhs_fn(U)
                U += stage.b * S
            if sanitizer is not None:
                sanitizer.check_state(U, where=f"{self.name} stage {si + 1}")
        return U


class LowStorageRK3(TimeStepper):
    """Williamson's third-order, three-stage, 2N-storage TVD RK scheme."""

    name = "rk3-williamson"
    order = 3
    stages = (
        RKStage(a=0.0, b=1.0 / 3.0),
        RKStage(a=-5.0 / 9.0, b=15.0 / 16.0),
        RKStage(a=-153.0 / 128.0, b=8.0 / 15.0),
    )


class ForwardEuler(TimeStepper):
    """First-order one-register baseline (ablation)."""

    name = "euler"
    order = 1
    stages = (RKStage(a=0.0, b=1.0),)


def make_stepper(name: str) -> TimeStepper:
    """Factory: ``"rk3"`` (default production scheme) or ``"euler"``.

    Returns a fresh :class:`TimeStepper` instance.
    """
    steppers = {
        "rk3": LowStorageRK3,
        "rk3-williamson": LowStorageRK3,
        "euler": ForwardEuler,
    }
    try:
        return steppers[name]()
    except KeyError:
        raise ValueError(
            f"unknown time stepper {name!r}; choose from {sorted(steppers)}"
        ) from None
