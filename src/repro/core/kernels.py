"""Core-layer compute kernels: RHS, UP and SOS (DT).

These are the paper's performance-critical kernels (Fig. 1):

* **RHS** -- evaluation of the right-hand side of the governing equations
  for every cell average of a block.  Two functionally identical
  implementations are provided: :func:`rhs_kernel` (whole-block
  vectorized) and :func:`rhs_kernel_slices` (the paper's streaming z-sweep
  over 2D slices through ring buffers).  The test suite asserts they agree
  to round-off; benchmarks compare their cost.
* **UP** -- the low-storage TVD Runge-Kutta update (:func:`update_stage`).
  Deliberately trivial arithmetic on large arrays: the paper reports it at
  0.2 FLOP/B and ~2 % of peak, i.e. purely memory-bound.
* **SOS** -- "speed of sound" reduction feeding the DT kernel: the maximum
  characteristic velocity of a block (:func:`sos_kernel`); the cluster
  layer allreduces it.

All kernels take AoS block data (the storage layout) and convert to
double-precision SoA internally (the paper's AoS/SoA conversion and mixed
precision).
"""

from __future__ import annotations

import numpy as np

from ..physics.eos import conserved_to_primitive, max_characteristic_velocity
from ..physics.equations import compute_rhs
from ..physics.riemann import hlle_flux
from ..physics.state import COMPUTE_DTYPE, GAMMA, NQ, PI
from ..physics.weno import Weno5Workspace, weno5
from .block import GHOSTS
from .ringbuffer import RING_DEPTH, SliceRing


def rhs_kernel(pad_aos: np.ndarray, h: float, fused: bool = False,
               order: int = 5, solver: str = "hlle") -> np.ndarray:
    """Whole-block vectorized RHS.

    Parameters
    ----------
    pad_aos:
        Ghost-padded AoS block data, shape ``(n+6, n+6, n+6, NQ)``.
    h:
        Grid spacing.
    fused:
        Use the micro-fused WENO kernel (Table 9 variant).

    Returns
    -------
    AoS time derivative of the conserved state, shape ``(n, n, n, NQ)``,
    in compute precision.
    """
    Upad = np.ascontiguousarray(
        np.moveaxis(pad_aos, -1, 0), dtype=COMPUTE_DTYPE
    )
    rhs_soa = compute_rhs(Upad, h, fused=fused, order=order, solver=solver)
    return np.ascontiguousarray(np.moveaxis(rhs_soa, 0, -1))


def _plane_rhs(
    W2d: np.ndarray, h: float, workspace: Weno5Workspace | None = None
) -> np.ndarray:
    """x- and y-sweep contributions for one padded primitive z-slice.

    ``W2d`` has shape ``(NQ, n+6, n+6)`` (axes: quantity, y, x) and holds
    primitives.  Returns the SoA contribution ``(NQ, n, n)`` of the two
    in-plane directional sweeps (flux divergence subtracted,
    quasi-conservative correction added).  Both sweeps reconstruct into
    the same (optionally caller-held) :class:`Weno5Workspace`.
    """
    g = GHOSTS
    inv_h = 1.0 / h

    # x sweep: interior in y, padded in x; reconstruct along the last axis.
    Wd = W2d[:, g:-g, :]
    face_shape = Wd.shape[:-1] + (Wd.shape[-1] - 5,)
    if workspace is None or workspace.shape != face_shape:
        workspace = Weno5Workspace(face_shape, dtype=Wd.dtype)
    Wm, Wp = weno5(Wd, workspace)
    flux, ustar = hlle_flux(Wm, Wp, normal=0)
    div = np.subtract(flux[..., 1:], flux[..., :-1])
    div *= inv_h
    du = np.subtract(ustar[..., 1:], ustar[..., :-1])
    du *= inv_h
    Wc = Wd[..., g:-g]
    contrib = np.negative(div, out=div)
    contrib[GAMMA] += Wc[GAMMA] * du
    contrib[PI] += Wc[PI] * du
    out = contrib

    # y sweep: interior in x, padded in y; swap axes to sweep contiguously.
    Wd = np.ascontiguousarray(np.swapaxes(W2d[:, :, g:-g], 1, 2))
    Wm, Wp = weno5(Wd, workspace)
    flux, ustar = hlle_flux(Wm, Wp, normal=1)
    div = np.subtract(flux[..., 1:], flux[..., :-1])
    div *= inv_h
    du = np.subtract(ustar[..., 1:], ustar[..., :-1])
    du *= inv_h
    Wc = Wd[..., g:-g]
    contrib = np.negative(div, out=div)
    contrib[GAMMA] += Wc[GAMMA] * du
    contrib[PI] += Wc[PI] * du
    out += np.swapaxes(contrib, 1, 2)
    return out


def rhs_kernel_slices(pad_aos: np.ndarray, h: float) -> np.ndarray:
    """Streaming RHS: the paper's ring-buffer z-sweep (Fig. 2, right).

    Converts one z-slice at a time (CONV), keeps the last ``RING_DEPTH``
    primitive slices in a :class:`SliceRing`, computes z-face fluxes
    incrementally and finishes each output slice as soon as its upper
    face is available.  Numerically identical to :func:`rhs_kernel`:
    returns the AoS time derivative, shape ``(n, n, n, NQ)`` in compute
    precision (dtype ``COMPUTE_DTYPE``).
    """
    m = pad_aos.shape[0]
    n = m - 2 * GHOSTS
    g = GHOSTS
    inv_h = 1.0 / h

    ring = SliceRing((NQ, m, m), depth=RING_DEPTH, dtype=COMPUTE_DTYPE)
    rhs = np.empty((n, n, n, NQ), dtype=COMPUTE_DTYPE)

    # Workspaces held across the sweep: one for the z-face stencils, one
    # shared by the in-plane sweeps of every finalized slice.
    ws_z = Weno5Workspace((NQ, n, n, 1), dtype=COMPUTE_DTYPE)
    ws_plane = Weno5Workspace((NQ, n, n + 1), dtype=COMPUTE_DTYPE)

    flux_prev: np.ndarray | None = None
    ustar_prev: np.ndarray | None = None

    for zp in range(m):
        # CONV stage, one slice at a time.
        Uslice = np.ascontiguousarray(
            np.moveaxis(pad_aos[zp], -1, 0), dtype=COMPUTE_DTYPE
        )
        ring.push(conserved_to_primitive(Uslice))

        if zp < RING_DEPTH - 1:
            continue

        # Ring now holds padded z-cells zp-5 .. zp; that is exactly the
        # 6-cell stencil of the z-face between cells zp-3 and zp-2,
        # i.e. global face index f = zp - 5 (0 .. n).
        f = zp - (RING_DEPTH - 1)
        sten = np.stack(
            [ring[i][:, g:-g, g:-g] for i in range(RING_DEPTH)], axis=-1
        )  # (NQ, n, n, 6)
        Wm, Wp = weno5(sten, ws_z)
        flux, ustar = hlle_flux(Wm[..., 0], Wp[..., 0], normal=2)

        if f >= 1:
            # Finalize output slice k = f - 1 (padded index k + GHOSTS;
            # the ring holds slices zp-(RING_DEPTH-1) .. zp, so that
            # center slice sits RING_DEPTH - 1 - GHOSTS slots from the
            # oldest entry).
            k = f - 1
            Wcenter = ring[RING_DEPTH - 1 - GHOSTS]
            contrib = _plane_rhs(Wcenter, h, ws_plane)
            # The outgoing face buffers double as scratch: they are
            # superseded by (flux, ustar) right after this block.
            np.subtract(flux, flux_prev, out=flux_prev)
            flux_prev *= inv_h
            contrib -= flux_prev
            np.subtract(ustar, ustar_prev, out=ustar_prev)
            ustar_prev *= inv_h
            du = ustar_prev
            Wc_int = Wcenter[:, g:-g, g:-g]
            contrib[GAMMA] += Wc_int[GAMMA] * du
            contrib[PI] += Wc_int[PI] * du
            rhs[k] = np.moveaxis(contrib, 0, -1)

        flux_prev, ustar_prev = flux, ustar

    return rhs


def sos_kernel(block_aos: np.ndarray) -> float:
    """SOS kernel: maximum characteristic velocity ``max(|u_i| + c)``.

    Input is un-padded AoS block data ``(n, n, n, NQ)``.  Returns the
    block maximum as a python float; the cluster layer reduces it
    globally and the DT kernel converts it into the CFL-limited step.
    """
    U = np.ascontiguousarray(np.moveaxis(block_aos, -1, 0), dtype=COMPUTE_DTYPE)
    W = conserved_to_primitive(U)
    return max_characteristic_velocity(W)


def dt_from_sos(sos_max: float, h: float, cfl: float) -> float:
    """DT kernel: CFL-limited time step from the global SOS reduction.

    Returns ``cfl * h / sos_max`` as a python float.
    """
    if sos_max <= 0:
        raise ValueError("maximum characteristic velocity must be positive")
    return cfl * h / sos_max


def update_stage(
    u_aos: np.ndarray,
    residual_aos: np.ndarray,
    rhs_aos: np.ndarray,
    a: float,
    b: float,
    dt: float,
    sanitizer=None,
    block: tuple[int, int, int] | None = None,
) -> None:
    """UP kernel: one low-storage Runge-Kutta stage, in place.

    Implements Williamson's 2N-storage update

        S <- a * S + dt * RHS(U)
        U <- U + b * S

    on AoS block data.  ``u_aos`` and ``residual_aos`` are storage
    precision and updated in place; the arithmetic runs in compute
    precision (mixed-precision scheme).

    ``sanitizer`` is an optional
    :class:`repro.analysis.sanitizer.NumericsSanitizer`; when given, the
    post-stage block state is checked for NaN/Inf, negative density /
    Gamma / pressure and the storage-dtype contract (``block`` labels
    the findings with the block index).  ``None`` -- the production
    default -- adds no checking work to this memory-bound kernel.
    """
    res64 = residual_aos.astype(COMPUTE_DTYPE)
    res64 *= a
    res64 += dt * rhs_aos
    u64 = u_aos.astype(COMPUTE_DTYPE)
    u64 += b * res64
    residual_aos[...] = res64
    u_aos[...] = u64
    if sanitizer is not None:
        sanitizer.check_block_write(u_aos, block=block)
        sanitizer.check_state(u_aos, block=block)
