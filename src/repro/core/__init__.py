"""Core layer: blocks and compute kernels (paper Section 6).

The core layer "is responsible for the execution of the compute kernels,
namely RHS, UP, SOS and FWT" and is the most performance-critical layer.
(The FWT kernel lives in :mod:`repro.compression` together with the rest
of the wavelet pipeline.)
"""

from .block import (
    DEFAULT_BLOCK_SIZE,
    GHOSTS,
    Block,
    fill_interior,
    padded_aos,
)
from .kernels import (
    dt_from_sos,
    rhs_kernel,
    rhs_kernel_slices,
    sos_kernel,
    update_stage,
)
from .ringbuffer import RING_DEPTH, SliceRing
from .timestepper import (
    ForwardEuler,
    LowStorageRK3,
    RKStage,
    TimeStepper,
    make_stepper,
)

__all__ = [
    "Block",
    "DEFAULT_BLOCK_SIZE",
    "ForwardEuler",
    "GHOSTS",
    "LowStorageRK3",
    "RING_DEPTH",
    "RKStage",
    "SliceRing",
    "TimeStepper",
    "dt_from_sos",
    "fill_interior",
    "make_stepper",
    "padded_aos",
    "rhs_kernel",
    "rhs_kernel_slices",
    "sos_kernel",
    "update_stage",
]
