"""Grid blocks: the core layer's unit of data and work.

The paper groups computational elements into 3D blocks of 32^3 cells held
in AoS (array-of-structures) order -- cell-contiguous, quantity-innermost
(Fig. 2, left).  A block is the granularity of

* kernel execution (one thread per block, paper Section 6),
* ghost reconstruction (fractions of surrounding blocks),
* wavelet compression (one block = one independent dataset).

Blocks store single-precision data (mixed-precision scheme); kernels
convert to double-precision SoA scratch on load.
"""

from __future__ import annotations

import numpy as np

from ..physics.state import (
    COMPUTE_DTYPE,
    ENERGY,
    GAMMA,
    NQ,
    RHO,
    STORAGE_DTYPE,
    aos_to_soa,
    soa_to_aos,
)

#: Production block edge in cells (paper: blocks of 32 elements per
#: direction).  Tests and laptop-scale runs use smaller blocks.
DEFAULT_BLOCK_SIZE = 32

#: Ghost width required by the WENO5 stencil.
GHOSTS = 3


class Block:
    """A cubic block of ``n^3`` cells with 7 quantities in AoS order.

    Parameters
    ----------
    n:
        Edge length in cells.
    index:
        The block's integer coordinates ``(bz, by, bx)`` within its rank's
        block grid (used by the node layer for ghost lookup and SFC
        ordering).
    """

    __slots__ = ("n", "index", "data")

    def __init__(self, n: int = DEFAULT_BLOCK_SIZE, index: tuple[int, int, int] = (0, 0, 0)):
        if n < 2 * GHOSTS:
            raise ValueError(f"block size {n} smaller than twice the ghost width")
        self.n = n
        self.index = tuple(index)
        #: AoS storage, shape (n, n, n, NQ), axes (z, y, x, quantity).
        self.data = np.zeros((n, n, n, NQ), dtype=STORAGE_DTYPE)

    # -- data access ----------------------------------------------------

    def soa(self, dtype=COMPUTE_DTYPE) -> np.ndarray:
        """Double-precision SoA copy ``(NQ, n, n, n)`` (kernel input)."""
        return aos_to_soa(self.data, dtype=dtype)

    def set_soa(self, soa: np.ndarray) -> None:
        """Store an SoA array back into the block (down-casts to storage)."""
        self.data[...] = soa_to_aos(soa, dtype=STORAGE_DTYPE)

    def quantity(self, q: int) -> np.ndarray:
        """View of one quantity, shape (n, n, n) -- strided, zero-copy."""
        return self.data[..., q]

    def nbytes(self) -> int:
        return self.data.nbytes

    def copy(self) -> "Block":
        b = Block(self.n, self.index)
        b.data[...] = self.data
        return b

    # -- ghost extraction (used by node/cluster ghost reconstruction) ---

    def face_slab(self, axis: int, side: int, width: int = GHOSTS) -> np.ndarray:
        """Return the slab of ``width`` cell layers at one face.

        ``axis`` is the spatial axis (0=z, 1=y, 2=x) and ``side`` is -1 for
        the low face or +1 for the high face.  The returned array is a copy
        (it is about to be shipped to a neighbor's ghost region or into an
        MPI message).
        """
        if side not in (-1, 1):
            raise ValueError("side must be -1 or +1")
        sel = [slice(None)] * 3
        sel[axis] = slice(0, width) if side == -1 else slice(self.n - width, self.n)
        return self.data[tuple(sel)].copy()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Block(n={self.n}, index={self.index})"


def padded_aos(n: int, dtype=STORAGE_DTYPE) -> np.ndarray:
    """Allocate the per-thread padded work area for a block's RHS.

    Shape ``(n+6, n+6, n+6, NQ)`` -- block data plus the WENO ghosts
    (the gray area of Fig. 2, right).  The array is prefilled with a
    benign unit state: the directional RHS sweeps never read the edge and
    corner ghost regions (only the six face slabs are filled by the ghost
    reconstruction), but the CONV stage converts the whole padded array
    and must not divide by a zero density there.
    """
    m = n + 2 * GHOSTS
    pad = np.zeros((m, m, m, NQ), dtype=dtype)
    pad[..., RHO] = 1.0
    pad[..., ENERGY] = 1.0
    pad[..., GAMMA] = 1.0
    return pad


def fill_interior(pad: np.ndarray, block: Block) -> None:
    """Copy a block's data into the interior of a padded work area."""
    g = GHOSTS
    pad[g:-g, g:-g, g:-g, :] = block.data
