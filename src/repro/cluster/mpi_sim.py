"""In-process SPMD communicator: the cluster layer's MPI substitute.

The paper parallelizes across ranks with MPI (non-blocking point-to-point
halo exchange, global reductions for DT, an exclusive prefix sum for
parallel I/O offsets).  This module provides the same API surface executed
by *threads inside one process* -- each rank runs the same SPMD program in
its own thread, point-to-point messages travel through selective-receive
mailboxes and collectives synchronize through generation-counted
rendezvous.  NumPy releases the GIL inside kernels, so rank threads
genuinely overlap, and the control flow (Isend/Irecv + overlap of interior
computation with communication) is exercised exactly as on a real cluster.

The API follows mpi4py conventions: lowercase methods communicate Python
objects, capitalized methods communicate NumPy arrays.

Deadlock safety: every blocking wait carries a timeout
(:data:`DEFAULT_TIMEOUT` seconds) and, instead of hanging the test
suite, raises :class:`DeadlockError` -- a :class:`CommTimeoutError`
carrying the deadlock watchdog's localized dump: every rank's pending
operation plus the unmatched edge set (messages sent but never
received).

Concurrency checking: a :class:`repro.analysis.concurrency.RaceTracker`
attached to the world (``SimWorld(..., tracker=...)``) receives
happens-before edges from the runtime -- message sends piggyback the
sender's vector clock on :class:`_Message`, collectives join the clocks
of all participants -- and annotated accesses to the runtime's shared
structures (mailboxes, rendezvous scratch, abort event, failure table).
With no tracker attached (the default), every hook is one ``is None``
test.

Fault tolerance: when any rank thread dies, the world is *aborted* --
``MPI_Abort`` semantics -- so peers blocked in receives or collectives
wake immediately with :class:`WorldAbortError` instead of running out
their timeouts.  :class:`WorldError.primary_failures` separates the
original cause from the teardown aborts.  An optional fault injector
(:class:`repro.resilience.inject.FaultInjector`) hooks the
point-to-point send path for chaos testing (drops, delays, in-transit
corruption, transient failures).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

#: Seconds a blocking receive/collective waits before declaring deadlock.
DEFAULT_TIMEOUT = 120.0

#: Wildcard for Recv source/tag matching.
ANY_SOURCE = -1
ANY_TAG = -1


class CommTimeoutError(RuntimeError):
    """A blocking communication did not complete within the timeout."""


class DeadlockError(CommTimeoutError):
    """A blocking wait timed out; carries the watchdog's localized dump.

    ``report`` holds :meth:`SimWorld.deadlock_report`: each rank's
    pending operation and the unmatched edge set at the moment of the
    timeout.  Subclassing :class:`CommTimeoutError` keeps existing
    failure classification (resilience rollback treats it as a
    communication fault) working unchanged.
    """

    def __init__(self, message: str, report: str):
        self.report = report
        self._message = message
        super().__init__(f"{message}\n{report}")

    def __reduce__(self):
        # The two-argument __init__ breaks default exception pickling;
        # the procs backend ships these across the process boundary.
        return (DeadlockError, (self._message, self.report))


class WorldAbortError(RuntimeError):
    """The world was aborted because another rank failed (teardown)."""


class WorldError(RuntimeError):
    """One or more rank threads raised; carries the per-rank exceptions."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        primary = self.primary_failures or failures
        msgs = "; ".join(f"rank {r}: {e!r}" for r, e in sorted(primary.items()))
        super().__init__(f"SPMD program failed on {len(failures)} rank(s): {msgs}")

    @property
    def primary_failures(self) -> dict[int, BaseException]:
        """Failures that caused the abort, excluding teardown aborts (dict)."""
        return {
            r: e for r, e in self.failures.items()
            if not isinstance(e, WorldAbortError)
        }


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any
    #: sender's vector clock at send time (happens-before piggyback;
    #: None when no tracker is attached)
    clock: dict[int, int] | None = None


class _Mailbox:
    """Per-rank selective-receive message store.

    ``abort`` is the world's abort event: waiting receivers re-check it
    after every wakeup and raise :class:`WorldAbortError` so a dead
    rank's peers fail fast instead of timing out.
    """

    def __init__(self, abort: threading.Event | None = None):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._messages: list[_Message] = []
        self._abort = abort or threading.Event()

    def wake_for_abort(self) -> None:
        """Wake every waiting receiver (the abort event is already set)."""
        with self._cv:
            self._cv.notify_all()

    def put(self, msg: _Message) -> None:
        with self._cv:
            self._messages.append(msg)
            self._cv.notify_all()

    def _match(self, source: int, tag: int) -> _Message | None:
        for i, msg in enumerate(self._messages):
            if source not in (ANY_SOURCE, msg.source):
                continue
            if tag not in (ANY_TAG, msg.tag):
                continue
            return self._messages.pop(i)
        return None

    def get(self, source: int, tag: int, timeout: float) -> _Message:
        import time

        deadline = None
        with self._cv:
            while True:
                msg = self._match(source, tag)
                if msg is not None:
                    return msg
                if self._abort.is_set():
                    raise WorldAbortError(
                        f"world aborted while waiting for Recv(source="
                        f"{source}, tag={tag})"
                    )
                if deadline is None:
                    deadline = time.monotonic() + timeout
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommTimeoutError(
                        f"Recv(source={source}, tag={tag}) timed out"
                    )
                self._cv.wait(remaining)

    def poll(self, source: int, tag: int) -> _Message | None:
        with self._cv:
            return self._match(source, tag)

    def undelivered(self) -> list[tuple[int, int]]:
        """``(source, tag)`` of every buffered-but-unreceived message."""
        with self._cv:
            return [(m.source, m.tag) for m in self._messages]


class _Rendezvous:
    """Generation-counted collective rendezvous.

    Each rank calls :meth:`contribute` with its sequence number (ranks of
    an SPMD program execute collectives in identical order, so sequence
    numbers line up).  The last contributor applies the combiner and wakes
    everybody; results are reference-counted away afterwards.
    """

    def __init__(self, size: int, abort: threading.Event | None = None):
        self.size = size
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._contrib: dict[int, dict[int, Any]] = {}
        self._results: dict[int, Any] = {}
        self._reads: dict[int, int] = {}
        self._abort = abort or threading.Event()

    def wake_for_abort(self) -> None:
        """Wake every waiting contributor (the abort event is already set)."""
        with self._cv:
            self._cv.notify_all()

    def contribute(
        self,
        gen: int,
        rank: int,
        value: Any,
        combiner: Callable[[dict[int, Any]], Any],
        timeout: float,
    ) -> Any:
        import time

        with self._cv:
            slot = self._contrib.setdefault(gen, {})
            if rank in slot:
                raise RuntimeError(f"rank {rank} contributed twice to gen {gen}")
            slot[rank] = value
            if len(slot) == self.size:
                self._results[gen] = combiner(slot)
                self._reads[gen] = 0
                self._cv.notify_all()
            deadline = time.monotonic() + timeout
            while gen not in self._results:
                if self._abort.is_set():
                    raise WorldAbortError(
                        f"world aborted while waiting in collective gen {gen}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = self.size - len(self._contrib.get(gen, {}))
                    raise CommTimeoutError(
                        f"collective gen {gen} timed out waiting for "
                        f"{missing} rank(s)"
                    )
                self._cv.wait(remaining)
            result = self._results[gen]
            self._reads[gen] += 1
            if self._reads[gen] == self.size:
                del self._results[gen]
                del self._reads[gen]
                del self._contrib[gen]
        return result


class Request:
    """Handle for a non-blocking operation (mirrors ``MPI.Request``)."""

    def __init__(self, wait_fn: Callable[[float], Any]):
        self._wait_fn = wait_fn
        self._done = False
        self._value: Any = None

    def wait(self, timeout: float | None = None) -> Any:
        """Complete the operation; ``None`` defers to the world timeout."""
        if not self._done:
            self._value = self._wait_fn(timeout)
            self._done = True
        return self._value

    @staticmethod
    def waitall(requests: list["Request"], timeout: float | None = None) -> list[Any]:
        return [r.wait(timeout) for r in requests]


# Reduction operators usable with allreduce/exscan.
OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: a if a >= b else b,
    "min": lambda a, b: a if a <= b else b,
}


class SimComm:
    """Communicator bound to one rank of a :class:`SimWorld`."""

    #: Ranks share one address space here; the procs backend sets True.
    process_parallel = False

    def __init__(self, world: "SimWorld", rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size
        self._gen = 0  #: collective sequence number (per rank)
        #: Bytes moved through point-to-point sends (traffic accounting).
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- point to point ---------------------------------------------------

    def _payload_bytes(self, obj: Any) -> int:
        # ndarray payloads and checksummed frames both expose ``nbytes``.
        return int(getattr(obj, "nbytes", 0))

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-API send (delivery is buffered, so it never blocks).

        With a fault injector attached to the world, the payload passes
        through its transport hook first: it may be dropped, delayed,
        corrupted in transit, or fail with a (retryable)
        ``TransientCommError``.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        payload = obj.copy() if isinstance(obj, np.ndarray) else obj
        injector = self._world.injector
        if injector is not None:
            from ..resilience.inject import DROPPED

            payload = injector.on_send(self.rank, dest, payload)
            if payload is DROPPED:
                return
        self.bytes_sent += self._payload_bytes(payload)
        self.messages_sent += 1
        tracker = self._world.tracker
        clock = None
        if tracker is not None:
            tracker.write(f"mailbox[{dest}]", self.rank,
                          locks=(f"mailbox[{dest}].cv",),
                          site="repro.cluster.mpi_sim:_Mailbox.put")
            clock = tracker.on_send(self.rank)
        self._world._mailboxes[dest].put(_Message(self.rank, tag, payload, clock))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: float | None = None) -> Any:
        """Blocking receive; ``timeout=None`` uses the world timeout.

        A plain timeout is upgraded by the deadlock watchdog into a
        :class:`DeadlockError` carrying every rank's pending operation
        and the unmatched edge set.
        """
        world = self._world
        if timeout is None:
            timeout = world.timeout
        op = f"recv(source={source}, tag={tag})"
        world._set_pending(self.rank, op)
        try:
            msg = world._mailboxes[self.rank].get(source, tag, timeout)
        except DeadlockError:
            raise
        except CommTimeoutError as exc:
            raise world._deadlock_error(self.rank, op) from exc
        finally:
            world._clear_pending(self.rank)
        tracker = world.tracker
        if tracker is not None:
            tracker.write(f"mailbox[{self.rank}]", self.rank,
                          locks=(f"mailbox[{self.rank}].cv",),
                          site="repro.cluster.mpi_sim:_Mailbox.get")
            tracker.on_deliver(self.rank, msg.clock)
        return msg.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)  # buffered: completes immediately
        return Request(lambda _t: None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(lambda t: self.recv(source, tag, timeout=t))

    # Uppercase aliases for NumPy arrays (mpi4py convention).
    Send = send
    Recv = recv
    Isend = isend
    Irecv = irecv

    # -- collectives --------------------------------------------------------

    def _collective(self, value: Any, combiner, label: str = "collective") -> Any:
        gen = self._gen
        self._gen += 1
        world = self._world
        tracker = world.tracker
        use_combiner = combiner
        if tracker is not None:
            tracker.write("rendezvous.scratch", self.rank,
                          locks=("rendezvous.cv",),
                          site="repro.cluster.mpi_sim:_Rendezvous.contribute")
            value = (value, tracker.on_collective_enter(self.rank))

            def wrapped(slot: dict[int, Any]) -> Any:
                inner = {r: vc[0] for r, vc in slot.items()}
                return combiner(inner), [vc[1] for vc in slot.values()]

            use_combiner = wrapped
        op = f"{label} (gen {gen})"
        world._set_pending(self.rank, op)
        try:
            result = world._rendezvous.contribute(
                gen, self.rank, value, use_combiner, world.timeout
            )
        except DeadlockError:
            raise
        except CommTimeoutError as exc:
            raise world._deadlock_error(self.rank, op) from exc
        finally:
            world._clear_pending(self.rank)
        if tracker is not None:
            result, clocks = result
            tracker.on_collective_exit(self.rank, clocks)
        return result

    def barrier(self) -> None:
        self._collective(None, lambda slot: True, label="barrier")

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce scalars/arrays with ``op`` in ('sum', 'max', 'min')."""
        fn = OPS[op]

        def combiner(slot: dict[int, Any]) -> Any:
            acc = None
            for r in sorted(slot):
                acc = slot[r] if acc is None else fn(acc, slot[r])
            return acc

        return self._collective(value, combiner, label=f"allreduce({op})")

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._collective(
            value if self.rank == root else None,
            lambda slot: slot[root],
            label="bcast",
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        result = self._collective(
            value, lambda slot: [slot[r] for r in sorted(slot)], label="gather"
        )
        return result if self.rank == root else None

    def allgather(self, value: Any) -> list[Any]:
        return self._collective(
            value, lambda slot: [slot[r] for r in sorted(slot)],
            label="allgather",
        )

    def exscan(self, value: Any, op: str = "sum") -> Any:
        """Exclusive prefix reduction (rank 0 receives the identity).

        This is the "exclusive prefix sum" the paper performs before the
        collective compressed-data write: each rank learns the file offset
        at which its buffer starts.
        """
        fn = OPS[op]

        def combiner(slot: dict[int, Any]) -> list[Any]:
            out: list[Any] = []
            acc = None
            for r in sorted(slot):
                out.append(acc)
                acc = slot[r] if acc is None else fn(acc, slot[r])
            return out

        per_rank = self._collective(value, combiner, label=f"exscan({op})")
        result = per_rank[self.rank]
        if result is None:
            # Identity element: 0 for scalars, zeros for arrays.
            if isinstance(value, np.ndarray):
                return np.zeros_like(value)
            return type(value)(0)
        return result


class SimWorld:
    """A set of ranks executing an SPMD program on threads.

    Usage::

        world = SimWorld(size=8)
        results = world.run(main)          # main(comm, *args) per rank

    ``run`` returns the per-rank return values (rank order) and re-raises
    rank failures as :class:`WorldError`.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT,
                 injector: Any | None = None, tracker: Any | None = None):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.timeout = timeout
        self.injector = injector
        #: optional :class:`repro.analysis.concurrency.RaceTracker`
        #: (None = no concurrency checking, zero overhead)
        self.tracker = tracker
        self._abort = threading.Event()
        self._mailboxes = [_Mailbox(self._abort) for _ in range(size)]
        self._rendezvous = _Rendezvous(size, self._abort)
        # Deadlock watchdog state: the blocking operation each rank is
        # currently parked in (always maintained; two locked dict ops
        # per blocking call).
        self._pending_lock = threading.Lock()
        self._pending: dict[int, str] = {}

    def comm(self, rank: int) -> SimComm:
        return SimComm(self, rank)

    def _set_pending(self, rank: int, op: str) -> None:
        with self._pending_lock:
            self._pending[rank] = op

    def _clear_pending(self, rank: int) -> None:
        with self._pending_lock:
            self._pending.pop(rank, None)

    def deadlock_report(self) -> str:
        """Localized watchdog dump of the current wait state (str).

        Lists the blocking operation each rank is parked in and the
        unmatched edge set -- messages buffered in a mailbox that no
        receive has consumed.  An empty edge set under a stuck receive
        means the matching send was never posted (or was dropped).
        """
        with self._pending_lock:
            pending = dict(self._pending)
        lines = ["deadlock watchdog: pending operation per rank:"]
        for r in range(self.size):
            lines.append(f"  rank {r}: {pending.get(r, 'not blocked in comm')}")
        lines.append("unmatched edges (sent but never received):")
        edges = [
            f"  (source={src}, tag={tag}) -> rank {r} buffered, unconsumed"
            for r, box in enumerate(self._mailboxes)
            for src, tag in box.undelivered()
        ]
        lines.extend(edges or ["  none (the matching send was never posted)"])
        return "\n".join(lines)

    def _deadlock_error(self, rank: int, op: str) -> DeadlockError:
        """Build the watchdog's :class:`DeadlockError` for a timed-out op."""
        report = self.deadlock_report()
        if self.tracker is not None:
            self.tracker.on_deadlock(
                f"deadlock: rank {rank} timed out in {op} "
                "(see DeadlockError report for the per-rank dump)",
                site=f"runtime:rank{rank}",
            )
        return DeadlockError(f"rank {rank}: {op} timed out", report)

    def _signal_abort(self, rank: int | None = None) -> None:
        """MPI_Abort analogue: wake every blocked rank with WorldAbortError.

        Called when any rank fails; without it, surviving ranks would sit
        in recv/collective waits until their timeout expires.  ``rank``
        (when known) attributes the abort-event write for the tracker.
        """
        if self.tracker is not None and rank is not None:
            self.tracker.write("world.abort", rank, locks=("abort.event",),
                               site="repro.cluster.mpi_sim:SimWorld._signal_abort")
        self._abort.set()
        for box in self._mailboxes:
            box.wake_for_abort()
        self._rendezvous.wake_for_abort()

    def run(self, main: Callable[..., Any], *args: Any) -> list[Any]:
        results: list[Any] = [None] * self.size
        failures: dict[int, BaseException] = {}
        # Rank threads can fail concurrently; the lock orders the shared
        # failure-table mutation (``results`` needs none: each rank owns
        # its slot).
        failures_lock = threading.Lock()

        def runner(rank: int) -> None:
            try:
                # Each rank owns its slot: disjoint indices, no lock needed.
                results[rank] = main(self.comm(rank), *args)  # lint: disable=CL011
            except BaseException as exc:  # noqa: BLE001 - reported below  # lint: disable=CL005
                if self.tracker is not None:
                    self.tracker.write(
                        "world.failures", rank,
                        locks=("world.failures.lock",),
                        site="repro.cluster.mpi_sim:SimWorld.run",
                    )
                with failures_lock:
                    failures[rank] = exc
                self._signal_abort(rank)

        if self.size == 1:
            # Fast path: no threads for single-rank runs.
            runner(0)
        else:
            threads = [
                threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
                for r in range(self.size)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if failures:
            raise WorldError(failures)
        return results
