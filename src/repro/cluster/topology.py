"""Cartesian domain decomposition (cluster layer).

"The computational domain is decomposed into subdomains across the ranks
in a cartesian topology with a constant subdomain size" (paper Section 6).
:class:`CartTopology` maps ranks to 3D process coordinates, provides face
neighbors (with optional periodicity) and slices the global cell domain
into per-rank subdomains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def balanced_dims(size: int) -> tuple[int, int, int]:
    """Factor ``size`` into three near-equal process-grid dimensions.

    Mirrors ``MPI_Dims_create``: greedy assignment of prime factors to the
    currently smallest dimension, returning ``(Pz, Py, Px)`` sorted
    descending so the z (outer, slowest) direction gets the largest count.
    """
    if size < 1:
        raise ValueError("size must be positive")
    dims = [1, 1, 1]
    n = size
    factors = []
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


def feasible_rank_counts(
    global_blocks: tuple[int, int, int], max_ranks: int
) -> list[int]:
    """Rank counts in ``[1, max_ranks]`` that decompose ``global_blocks``.

    A count is feasible when :func:`balanced_dims` divides the global
    block grid evenly on every axis (the constant-subdomain-size
    constraint).  Ascending order; used by the recovery supervisor to
    shrink a world after a rank loss while keeping the decomposition
    valid.
    """
    feasible = []
    for n in range(1, max_ranks + 1):
        dims = balanced_dims(n)
        if all(global_blocks[d] % dims[d] == 0 for d in range(3)):
            feasible.append(n)
    return feasible


@dataclass(frozen=True)
class CartTopology:
    """A 3D process grid over ``Pz * Py * Px`` ranks.

    Rank order is row-major in ``(z, y, x)`` (z slowest), matching the
    block-grid axis convention of the node layer.
    """

    dims: tuple[int, int, int]
    periodic: tuple[bool, bool, bool] = (False, False, False)

    def __post_init__(self):
        if any(d < 1 for d in self.dims):
            raise ValueError(f"invalid dims {self.dims}")

    @property
    def size(self) -> int:
        pz, py, px = self.dims
        return pz * py * px

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Process coordinates ``(cz, cy, cx)`` of ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        pz, py, px = self.dims
        cz, rem = divmod(rank, py * px)
        cy, cx = divmod(rem, px)
        return cz, cy, cx

    def rank_of(self, coords: tuple[int, int, int]) -> int:
        pz, py, px = self.dims
        cz, cy, cx = (c % d for c, d in zip(coords, self.dims))
        return (cz * py + cy) * px + cx

    def neighbor(self, rank: int, axis: int, side: int) -> int | None:
        """Face-neighbor rank, or ``None`` at a non-periodic boundary."""
        coords = list(self.coords(rank))
        coords[axis] += side
        if not 0 <= coords[axis] < self.dims[axis]:
            if not self.periodic[axis]:
                return None
            coords[axis] %= self.dims[axis]
        return self.rank_of(tuple(coords))

    def neighbors(self, rank: int) -> dict[tuple[int, int], int | None]:
        """All six face neighbors keyed by ``(axis, side)``."""
        return {
            (axis, side): self.neighbor(rank, axis, side)
            for axis in range(3)
            for side in (-1, 1)
        }

    # -- domain slicing ----------------------------------------------------

    def subdomain_blocks(
        self, rank: int, global_blocks: tuple[int, int, int]
    ) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """Per-rank block range of a global block grid.

        Returns ``(start, count)`` in block units per axis.  The global
        block counts must be divisible by the process dims (constant
        subdomain size, as in the paper).
        """
        for d in range(3):
            if global_blocks[d] % self.dims[d] != 0:
                raise ValueError(
                    f"global block count {global_blocks[d]} not divisible by "
                    f"process dim {self.dims[d]} on axis {d}"
                )
        counts = tuple(global_blocks[d] // self.dims[d] for d in range(3))
        c = self.coords(rank)
        starts = tuple(c[d] * counts[d] for d in range(3))
        return starts, counts

    def is_domain_boundary(self, rank: int, axis: int, side: int) -> bool:
        """True if this rank face is a physical domain face."""
        return self.neighbor(rank, axis, side) is None
