"""Lossless checkpoint/restart of simulation state.

Production runs of 10'000-100'000 steps (paper Section 1) cannot rely on
a single job allocation; CUBISM-MPCF-style campaigns stitch "simulation
units" across restarts (Section 7).  This module provides the collective
state serialization that makes that possible:

* every rank deflates its full AoS subdomain (all seven quantities,
  *losslessly* -- checkpoints must restart bit-exactly, unlike the lossy
  visualization dumps);
* offsets come from the same exclusive prefix sum as the dump writer;
* the reader stitches the global field, so a run may restart on a
  *different* rank count than it was written with.

Durability (the resilience layer's contract):

* writes are **atomic**: the file is assembled at ``path + ".tmp"`` and
  promoted with ``os.replace`` only after every rank's block landed -- a
  crash mid-write can never destroy the previous generation;
* every rank-block carries a **CRC32** in the header, verified by the
  reader, so a storage bit flip is diagnosed as a localized
  :class:`~repro.resilience.detect.CheckpointCorruptError` instead of
  silently restarting into a wrong field;
* the reader validates **coverage**: the rank blocks must tile the
  global box exactly (no gaps, no overlaps) -- the pre-resilience reader
  silently zero-filled gaps;
* generations are named ``ckpt_000042.rck`` and rotated
  (:func:`prune_checkpoints` keeps the newest N), so a corrupted newest
  generation can fall back to the previous one.
"""

from __future__ import annotations

import json
import os
import re
import zlib

import numpy as np

from ..physics.state import NQ, STORAGE_DTYPE
from ..resilience.detect import (
    CheckpointCorruptError,
    CheckpointWriteError,
    crc32_bytes,
)
from ..telemetry.clock import wall_now

#: Fixed-size JSON header (same convention as the dump files).
HEADER_SIZE = 65536
_MAGIC = "repro-checkpoint-v1"

#: Generation file naming: ``ckpt_000042.rck`` (6-digit step).
_CKPT_RE = re.compile(r"^ckpt_(\d{6})\.rck$")


def checkpoint_path(ckpt_dir: str, step: int) -> str:
    """Canonical path of the generation written at ``step`` (str)."""
    return os.path.join(ckpt_dir, f"ckpt_{step:06d}.rck")


def list_checkpoints(ckpt_dir: str) -> list[tuple[int, str]]:
    """All generations in ``ckpt_dir``, oldest first (list of (step, path)).

    Only canonical ``ckpt_NNNNNN.rck`` names are considered; temporaries
    and foreign files are ignored.
    """
    if not os.path.isdir(ckpt_dir):
        return []
    found = []
    for name in sorted(os.listdir(ckpt_dir)):
        m = _CKPT_RE.match(name)
        if m:
            found.append((int(m.group(1)), os.path.join(ckpt_dir, name)))
    found.sort()
    return found


def prune_checkpoints(ckpt_dir: str, keep: int) -> list[str]:
    """Delete all but the newest ``keep`` generations; returns paths removed.

    ``keep <= 0`` disables rotation (nothing is removed).
    """
    if keep <= 0:
        return []
    removed = []
    gens = list_checkpoints(ckpt_dir)
    for _step, path in gens[:-keep] if len(gens) > keep else []:
        try:
            os.remove(path)
            removed.append(path)
        except OSError:
            continue  # a vanished/busy generation is not worth failing over
    return removed


def write_checkpoint(comm, path: str, field: np.ndarray,
                     origin_cells: tuple[int, int, int],
                     t: float, step: int, injector=None) -> int:
    """Collectively write one checkpoint; returns this rank's byte count.

    ``field`` is the rank's AoS subdomain ``(nz, ny, nx, NQ)`` in storage
    precision.  The write is atomic (tmp + ``os.replace``) and each
    rank-block's CRC32 is recorded in the header.

    ``injector`` is an optional
    :class:`~repro.resilience.inject.FaultInjector`: its ``ckpt_bitflip``
    site corrupts this rank's payload post-CRC (the flip is then caught
    by the *reader*), and its ``io_fail`` site (target ``"checkpoint"``)
    turns this rank's write into a failure.  Write failures are
    allreduced so **every** rank raises
    :class:`~repro.resilience.detect.CheckpointWriteError` and the SPMD
    control flow stays collectively consistent; the temporary is removed
    and previous generations stay intact.
    """
    if field.dtype != STORAGE_DTYPE:
        field = field.astype(STORAGE_DTYPE)
    payload = zlib.compress(np.ascontiguousarray(field).tobytes(), 1)
    crc = crc32_bytes(payload)
    if injector is not None:
        payload = injector.corrupt_checkpoint_payload(comm.rank, step, payload)
    size = len(payload)
    offset = comm.exscan(size, op="sum") + HEADER_SIZE
    entries = comm.gather(
        {
            "offset": offset,
            "size": size,
            "crc32": crc,
            "origin_cells": list(origin_cells),
            "shape": list(field.shape[:3]),
        },
        root=0,
    )
    tmp = path + ".tmp"
    ok = 1
    try:
        if comm.rank == 0:
            header = {
                "magic": _MAGIC,
                "t": t,
                "step": step,
                "written_at": wall_now(),
                "ranks": entries,
            }
            blob = json.dumps(header).encode()
            if len(blob) > HEADER_SIZE:
                raise ValueError("checkpoint header exceeds HEADER_SIZE")
            with open(tmp, "wb") as f:
                f.write(blob.ljust(HEADER_SIZE))
        comm.barrier()
        if injector is not None and injector.io_fails(
            comm.rank, "checkpoint", step
        ):
            from ..resilience.inject import InjectedIOError

            raise InjectedIOError(
                f"injected checkpoint write failure on rank {comm.rank}"
            )
        with open(tmp, "r+b") as f:
            f.seek(offset)
            f.write(payload)
            f.flush()
            # Durability before the rank-0 os.replace below: a rename
            # is only atomic w.r.t. data that has reached the disk.
            os.fsync(f.fileno())
    except (OSError, ValueError) as exc:
        ok = 0
        failure = exc
    # Allreduce the per-rank flag so every rank takes the same branch:
    # SPMD control flow must never diverge on a local write failure.
    n_failed = comm.allreduce(1 - ok, op="sum")
    if n_failed:
        if comm.rank == 0:
            try:
                os.remove(tmp)
            except OSError:
                pass
            if injector is not None:
                injector.detected("io_fail", n_failed)
                injector.count("checkpoints_failed")
        raise CheckpointWriteError(
            f"checkpoint write of step {step} failed on {n_failed} rank(s)"
            + (f"; this rank: {failure!r}" if not ok else "")
        )
    comm.barrier()
    if comm.rank == 0:
        os.replace(tmp, path)
        if injector is not None:
            total = HEADER_SIZE + sum(e["size"] for e in entries)
            injector.count("ckpt_bytes_written", total)
            injector.set_counter("ckpt_generation_bytes", total)
    comm.barrier()
    return size


def read_checkpoint_meta(path: str) -> dict:
    """Header of a checkpoint: ``t``, ``step``, per-rank layout.

    Raises :class:`~repro.resilience.detect.CheckpointCorruptError` (a
    ``ValueError``) on a bad magic or an unparseable header.
    """
    with open(path, "rb") as f:
        raw = f.read(HEADER_SIZE)
    try:
        header = json.loads(raw.decode().rstrip())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"{path}: unreadable checkpoint header ({exc})"
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise CheckpointCorruptError(f"{path} is not a repro checkpoint")
    if "ranks" not in header or not header["ranks"]:
        raise CheckpointCorruptError(f"{path}: header lists no rank blocks")
    return header


def _validate_coverage(path: str, entries: list[dict],
                       max_corner: list[int]) -> None:
    """Rank blocks must tile the global box exactly (no gaps/overlaps)."""
    occupancy = np.zeros(tuple(max_corner), dtype=np.uint8)
    for e in entries:
        oz, oy, ox = e["origin_cells"]
        sz, sy, sx = e["shape"]
        if min(oz, oy, ox) < 0 or min(sz, sy, sx) < 1:
            raise CheckpointCorruptError(
                f"{path}: invalid rank-block geometry origin="
                f"{e['origin_cells']} shape={e['shape']}"
            )
        occupancy[oz:oz + sz, oy:oy + sy, ox:ox + sx] += 1
    if (occupancy > 1).any():
        cell = tuple(int(i) for i in np.argwhere(occupancy > 1)[0])
        raise CheckpointCorruptError(
            f"{path}: rank blocks overlap at cell {cell}"
        )
    if (occupancy == 0).any():
        cell = tuple(int(i) for i in np.argwhere(occupancy == 0)[0])
        raise CheckpointCorruptError(
            f"{path}: rank blocks leave a gap at cell {cell} -- refusing "
            f"to zero-fill"
        )


def read_checkpoint_field(path: str) -> tuple[np.ndarray, float, int]:
    """Stitch the global AoS field of a checkpoint.

    Returns ``(field, t, step)``.  Works regardless of how many ranks
    wrote the file.  Every rank-block is CRC32-verified and the blocks
    must tile the global box exactly; any violation raises a localized
    :class:`~repro.resilience.detect.CheckpointCorruptError` (never a
    silent zero-fill).
    """
    header = read_checkpoint_meta(path)
    entries = header["ranks"]
    max_corner = [0, 0, 0]
    for e in entries:
        for d in range(3):
            max_corner[d] = max(max_corner[d], e["origin_cells"][d] + e["shape"][d])
    _validate_coverage(path, entries, max_corner)
    out = np.empty(tuple(max_corner) + (NQ,), dtype=STORAGE_DTYPE)
    with open(path, "rb") as f:
        for i, e in enumerate(entries):
            f.seek(e["offset"])
            raw = f.read(e["size"])
            if len(raw) != e["size"]:
                raise CheckpointCorruptError(
                    f"{path}: rank block {i} truncated "
                    f"({len(raw)}/{e['size']} bytes)"
                )
            if "crc32" in e and crc32_bytes(raw) != e["crc32"]:
                raise CheckpointCorruptError(
                    f"{path}: rank block {i} (origin {e['origin_cells']}) "
                    f"failed CRC32 -- storage corruption"
                )
            try:
                decompressed = zlib.decompress(raw)
            except zlib.error as exc:
                raise CheckpointCorruptError(
                    f"{path}: rank block {i} does not decompress ({exc})"
                ) from exc
            shape = tuple(e["shape"]) + (NQ,)
            expected = int(np.prod(shape)) * np.dtype(STORAGE_DTYPE).itemsize
            if len(decompressed) != expected:
                raise CheckpointCorruptError(
                    f"{path}: rank block {i} payload is {len(decompressed)} "
                    f"bytes, expected {expected} for shape {shape}"
                )
            sub = np.frombuffer(decompressed, dtype=STORAGE_DTYPE).reshape(shape)
            oz, oy, ox = e["origin_cells"]
            out[oz : oz + shape[0], oy : oy + shape[1], ox : ox + shape[2]] = sub
    return out, float(header["t"]), int(header["step"])
