"""Lossless checkpoint/restart of simulation state.

Production runs of 10'000-100'000 steps (paper Section 1) cannot rely on
a single job allocation; CUBISM-MPCF-style campaigns stitch "simulation
units" across restarts (Section 7).  This module provides the collective
state serialization that makes that possible:

* every rank deflates its full AoS subdomain (all seven quantities,
  *losslessly* -- checkpoints must restart bit-exactly, unlike the lossy
  visualization dumps);
* offsets come from the same exclusive prefix sum as the dump writer;
* the reader stitches the global field, so a run may restart on a
  *different* rank count than it was written with.
"""

from __future__ import annotations

import json
import zlib

import numpy as np

from ..physics.state import NQ, STORAGE_DTYPE
from ..telemetry.clock import wall_now

#: Fixed-size JSON header (same convention as the dump files).
HEADER_SIZE = 65536
_MAGIC = "repro-checkpoint-v1"


def write_checkpoint(comm, path: str, field: np.ndarray,
                     origin_cells: tuple[int, int, int],
                     t: float, step: int) -> int:
    """Collectively write one checkpoint; returns this rank's byte count.

    ``field`` is the rank's AoS subdomain ``(nz, ny, nx, NQ)`` in storage
    precision.
    """
    if field.dtype != STORAGE_DTYPE:
        field = field.astype(STORAGE_DTYPE)
    payload = zlib.compress(np.ascontiguousarray(field).tobytes(), 1)
    size = len(payload)
    offset = comm.exscan(size, op="sum") + HEADER_SIZE
    entries = comm.gather(
        {
            "offset": offset,
            "size": size,
            "origin_cells": list(origin_cells),
            "shape": list(field.shape[:3]),
        },
        root=0,
    )
    if comm.rank == 0:
        header = {
            "magic": _MAGIC,
            "t": t,
            "step": step,
            "written_at": wall_now(),
            "ranks": entries,
        }
        blob = json.dumps(header).encode()
        if len(blob) > HEADER_SIZE:
            raise ValueError("checkpoint header exceeds HEADER_SIZE")
        with open(path, "wb") as f:
            f.write(blob.ljust(HEADER_SIZE))
    comm.barrier()
    with open(path, "r+b") as f:
        f.seek(offset)
        f.write(payload)
    comm.barrier()
    return size


def read_checkpoint_meta(path: str) -> dict:
    """Header of a checkpoint: ``t``, ``step``, per-rank layout."""
    with open(path, "rb") as f:
        header = json.loads(f.read(HEADER_SIZE).decode().rstrip())
    if header.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro checkpoint")
    return header


def read_checkpoint_field(path: str) -> tuple[np.ndarray, float, int]:
    """Stitch the global AoS field of a checkpoint.

    Returns ``(field, t, step)``.  Works regardless of how many ranks
    wrote the file.
    """
    header = read_checkpoint_meta(path)
    max_corner = [0, 0, 0]
    for e in header["ranks"]:
        for d in range(3):
            max_corner[d] = max(max_corner[d], e["origin_cells"][d] + e["shape"][d])
    out = np.zeros(tuple(max_corner) + (NQ,), dtype=STORAGE_DTYPE)
    with open(path, "rb") as f:
        for e in header["ranks"]:
            f.seek(e["offset"])
            raw = zlib.decompress(f.read(e["size"]))
            shape = tuple(e["shape"]) + (NQ,)
            sub = np.frombuffer(raw, dtype=STORAGE_DTYPE).reshape(shape)
            oz, oy, ox = e["origin_cells"]
            out[oz : oz + shape[0], oy : oy + shape[1], ox : ox + shape[2]] = sub
    return out, float(header["t"]), int(header["step"])
