"""Production simulation driver (cluster layer, paper Fig. 1 & Section 6).

Each simulation step executes

    DT   -- rank-local SOS kernel + global max-allreduce, CFL time step;
    3 x (RHS + UP) -- per RK stage: post the non-blocking halo exchange,
            evaluate interior blocks while messages are in flight, finish
            the exchange, evaluate halo blocks, apply the low-storage
            update;
    IO   -- every ``dump_interval`` steps, wavelet-compress p and Gamma
            and write them collectively (exscan offsets).

The driver runs as an SPMD program over the simulated communicator; the
:class:`Simulation` facade hides the world setup and stitches per-rank
results for single-process callers (examples, tests, benchmarks).

Per-phase wall-clock timers reproduce the time-distribution measurements
of paper Fig. 7.  With ``config.telemetry`` enabled the same spans also
feed :mod:`repro.telemetry`: counters, a JSON metrics snapshot on
``RankResult``/``RunResult`` and (mode ``"trace"``) per-rank span events
exportable as a Perfetto timeline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..analysis.concurrency import (
    ConcurrencyReport,
    ConcurrencyViolationError,
    make_tracker,
)
from ..analysis.sanitizer import (
    NumericsViolationError,
    ViolationReport,
    make_sanitizer,
)
from ..compression.io import write_compressed_parallel
from ..compression.scheme import WaveletCompressor
from ..core.timestepper import make_stepper
from ..node.dispatcher import Dispatcher
from ..node.grid import BlockGrid
from ..node.solver import NodeSolver
from ..physics.state import ENERGY, GAMMA, NQ, RHO, STORAGE_DTYPE
from ..sim.config import SimulationConfig
from ..sim.diagnostics import (
    Diagnostics,
    pressure_field,
    rank_diagnostics,
    reduce_diagnostics,
)
from ..telemetry import (
    FlightRecorder,
    MetricsSnapshot,
    PhaseTimers,
    ProgressReporter,
    SpanEvent,
    make_tracer,
    safe_rate,
)
from ..telemetry.clock import now
from .halo import HaloExchange
from .mpi_sim import SimComm, SimWorld, WorldError
from .topology import CartTopology, balanced_dims


@dataclass
class StepRecord:
    """Diagnostics and timings of one completed step."""

    step: int
    time: float
    dt: float
    diagnostics: Diagnostics | None
    timers: dict[str, float] = field(default_factory=dict)


@dataclass
class RankResult:
    """Everything one rank returns from an SPMD run."""

    rank: int
    records: list[StepRecord]
    field: np.ndarray | None  #: final AoS subdomain (if collected)
    origin_cells: tuple[int, int, int]
    timers: dict[str, float]
    bytes_sent: int
    messages_sent: int
    compression_stats: list[dict]
    #: wall damage map of this rank's wall patch (if erosion is enabled
    #: and the subdomain touches the wall)
    wall_damage: np.ndarray | None = None
    #: per-rank numerics-sanitizer findings (None when sanitize="off")
    sanitizer_report: ViolationReport | None = None
    #: wall-clock seconds of this rank's whole SPMD program
    wall_seconds: float = 0.0
    #: per-rank metrics snapshot (None when telemetry="off")
    telemetry: MetricsSnapshot | None = None
    #: per-rank span events (only when telemetry="trace")
    trace_events: list[SpanEvent] | None = None


@dataclass
class RunResult:
    """Assembled outcome of a simulation run."""

    records: list[StepRecord]
    final_field: np.ndarray | None  #: global AoS field (if collected)
    timers: dict[str, float]  #: mean per-rank phase seconds
    rank_results: list[RankResult]
    config: SimulationConfig
    #: merged sanitizer findings over all ranks (None when sanitize="off")
    sanitizer_report: ViolationReport | None = None
    #: run wall-clock seconds (maximum over ranks)
    wall_seconds: float = 0.0
    #: merged metrics snapshot over all ranks (None when telemetry="off")
    telemetry: MetricsSnapshot | None = None
    #: runtime concurrency findings -- races and watchdog-diagnosed
    #: deadlocks (None when concurrency_check="off")
    concurrency_report: ConcurrencyReport | None = None

    @property
    def cells_per_second(self) -> float:
        """Achieved throughput in cell updates per second.

        Completed steps times global cells over run wall time -- the
        quantity the paper reports as Gcells/s (721 Gcells/s on 96
        racks).  Available for every run, telemetry on or off; runs with
        a degenerate (zero/near-zero) wall clock report 0.0 -- never
        inf/NaN -- and bump ``telemetry.DEGENERATE_COUNTS``.
        """
        cells = 1
        for c in self.config.cells:
            cells *= c
        return safe_rate(len(self.records) * cells, self.wall_seconds,
                         "throughput_degenerate_wall")

    @property
    def wall_damage(self) -> np.ndarray | None:
        """Global wall damage map stitched from the wall ranks."""
        pieces = [
            (rr.origin_cells, rr.wall_damage)
            for rr in self.rank_results
            if rr.wall_damage is not None
        ]
        if not pieces:
            return None
        axis = self.config.wall[0]
        plane_axes = [d for d in range(3) if d != axis]
        extent = tuple(self.config.cells[d] for d in plane_axes)
        out = np.zeros(extent)
        for origin, dmg in pieces:
            o = tuple(origin[d] for d in plane_axes)
            out[o[0] : o[0] + dmg.shape[0], o[1] : o[1] + dmg.shape[1]] = dmg
        return out

    def series(self, name: str) -> np.ndarray:
        """Time series of a diagnostic attribute (e.g. ``max_pressure``)."""
        vals = [
            getattr(r.diagnostics, name)
            for r in self.records
            if r.diagnostics is not None
        ]
        return np.asarray(vals)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(
            [r.time for r in self.records if r.diagnostics is not None]
        )


def rank_main(comm: SimComm, config: SimulationConfig, ic_fn,
              restart_from: str | None = None,
              injector=None) -> RankResult:
    """The SPMD program executed by every rank.

    ``restart_from`` resumes a run from a checkpoint written by
    :func:`repro.cluster.checkpoint.write_checkpoint` (any rank count);
    ``max_steps`` counts total steps including the restarted ones.

    ``injector`` is an optional
    :class:`~repro.resilience.inject.FaultInjector`: the chaos engine's
    step hook (rank crashes, stragglers) plus the resilience monitor the
    dump/checkpoint degradation paths count on.
    """
    wall_t0 = now()
    topo = CartTopology(balanced_dims(comm.size), config.periodic)
    if topo.size != comm.size:
        raise ValueError(f"topology size {topo.size} != world size {comm.size}")
    starts, counts = topo.subdomain_blocks(comm.rank, config.global_blocks)
    n = config.block_size
    h = config.h
    origin_cells = tuple(s * n for s in starts)
    grid = BlockGrid(counts, n, h, origin=tuple(o * h for o in origin_cells))
    t = 0.0
    step = 0
    if restart_from is None:
        grid.fill(ic_fn)
    else:
        from ..resilience.detect import screen_restored_state
        from .checkpoint import read_checkpoint_field

        global_field, t, step = read_checkpoint_field(restart_from)
        # SDC screen before any cell enters the stencil: a corruption
        # that slipped past the block CRCs must not restart silently.
        screen_restored_state(global_field, where=restart_from)
        oz, oy, ox = origin_cells
        nz, ny, nx = grid.cells
        grid.from_array(global_field[oz:oz + nz, oy:oy + ny, ox:ox + nx])

    tracer = make_tracer(config.telemetry, rank=comm.rank,
                         max_events=config.telemetry_max_events)
    solver = NodeSolver(
        grid,
        boundary=config.boundary_spec(),
        dispatcher=Dispatcher(num_workers=config.num_workers),
        fused=config.fused_weno,
        use_slices=config.use_slices,
        order=config.weno_order,
        solver=config.riemann_solver,
        tracer=tracer,
    )
    from ..resilience.recover import RetryPolicy

    halo = HaloExchange(
        comm, topo, grid, tracer=tracer, injector=injector,
        retry=RetryPolicy(max_attempts=config.comm_retry_attempts,
                          base_delay=config.comm_retry_base,
                          seed=2013 + comm.rank),
    )
    interior, halo_blocks = halo.halo_split()
    stepper = make_stepper(config.stepper)

    sanitizer = make_sanitizer(config.sanitize, p_min=config.sanitize_p_min)
    if sanitizer is not None:
        sanitizer.set_context("initial condition")
        for idx, block in grid.blocks.items():
            sanitizer.check_state(block.data, block=idx)

    # The wall diagnostic is recorded only by ranks whose subdomain
    # touches the wall face.
    wall = None
    if config.wall is not None and topo.is_domain_boundary(
        comm.rank, *config.wall
    ):
        wall = config.wall

    # Optional erosion accumulation on the wall patch (paper Section 9's
    # "coupling material erosion models with the flow solver").
    damage = None
    if config.erosion is not None and wall is not None:
        from ..sim.erosion import WallDamageAccumulator

        patch_shape = tuple(
            c for d, c in enumerate(grid.cells) if d != wall[0]
        )
        damage = WallDamageAccumulator(patch_shape, h, config.erosion)

    # The tracer doubles as the phase-timer dict; with telemetry off a
    # bare PhaseTimers keeps the legacy ``StepRecord.timers`` payload
    # without constructing any telemetry state.
    timers = tracer if tracer is not None else PhaseTimers()
    ncells = int(np.prod(grid.cells))
    records: list[StepRecord] = []
    compression_stats: list[dict] = []

    # -- flight recorder / live progress (opt-in observability) ----------
    flight = None
    flight_state: dict = {"timers": {}, "sanitizer": 0, "resilience": 0}
    conservation0 = (0.0, 0.0)
    if config.flight_out:
        conservation0 = _conservation_sums(grid)
        flight = FlightRecorder(
            config.flight_out,
            rank=comm.rank,
            meta={
                "ranks": comm.size,
                "cells": list(config.cells),
                "block_size": config.block_size,
                "max_steps": config.max_steps,
                "telemetry": config.telemetry,
                "sanitize": config.sanitize,
            },
            flush_every=config.flight_flush_every,
            # Rank processes share no memory: each writes a private
            # part file the parent merges once the world finishes.
            per_rank=getattr(comm, "process_parallel", False),
        )
    progress = None
    if config.progress_interval and comm.rank == 0:
        progress = ProgressReporter(
            total_steps=config.max_steps,
            cells=int(np.prod(config.cells)),
            interval=config.progress_interval,
        )

    try:
        while step < config.max_steps and t < config.t_end:
            step_t0 = now() if flight is not None else 0.0
            # -- chaos hook: injected rank crashes / stragglers --------------
            if injector is not None:
                injector.at_step(comm.rank, step + 1)

            # -- DT kernel: SOS reduction -> CFL time step -------------------
            if sanitizer is not None:
                sanitizer.set_context(f"step {step + 1} DT")
            with timers.span("DT"):
                sos = comm.allreduce(solver.max_sos(sanitizer=sanitizer),
                                     op="max")
                if not np.isfinite(sos):
                    raise RuntimeError(
                        f"solution diverged at step {step}: non-finite "
                        "characteristic velocity (check resolution/CFL)"
                    )
                dt = config.cfl * h / sos
                if t + dt > config.t_end:
                    dt = config.t_end - t
            if tracer is not None:
                tracer.count("allreduce_calls")

            # -- RK stages: RHS (overlapped halo exchange) + UP ---------------
            for si, stage in enumerate(stepper.stages):
                if sanitizer is not None:
                    sanitizer.set_context(f"step {step + 1} stage {si + 1}")
                with timers.span("RHS"):
                    pending = halo.start()
                    rhs_map = solver.evaluate_rhs(interior, sanitizer=sanitizer)
                with timers.span("COMM_WAIT"):
                    provider = halo.finish(pending)
                with timers.span("RHS"):
                    rhs_map.update(
                        solver.evaluate_rhs(halo_blocks, provider,
                                            sanitizer=sanitizer)
                    )
                with timers.span("UP"):
                    solver.update(rhs_map, stage.a, stage.b, dt,
                                  sanitizer=sanitizer)

            t += dt
            step += 1
            if tracer is not None:
                tracer.count("steps")
                tracer.count("cell_steps", ncells)

            # -- erosion accumulation on the wall layer ----------------------
            if damage is not None:
                with timers.span("EROSION"):
                    from ..sim.diagnostics import pressure_field
                    from .halo import extract_face_slab

                    layer = extract_face_slab(grid, wall[0], wall[1], width=1)
                    p_wall = pressure_field(np.squeeze(layer, axis=wall[0]))
                    damage.update(p_wall, dt)

            # -- diagnostics ---------------------------------------------------
            diag = None
            if config.diag_interval and step % config.diag_interval == 0:
                with timers.span("DIAG"):
                    local = rank_diagnostics(grid.to_array(), h, wall)
                    diag = reduce_diagnostics(comm, local)

            # -- compressed data dumps (p and Gamma only, as in the paper) ----
            if config.dump_interval and step % config.dump_interval == 0:
                # Pre-flight the injected storage fault collectively so every
                # rank takes the same branch: a failed dump degrades to a
                # counted skip, never a diverged SPMD control flow.
                io_bad = 1 if (injector is not None and
                               injector.io_fails(comm.rank, "dump", step)) else 0
                if injector is not None:
                    io_bad = comm.allreduce(io_bad, op="max")
                if io_bad:
                    if comm.rank == 0:
                        injector.detected("io_fail")
                        injector.recovered("io_fail")
                        injector.count("dumps_skipped")
                else:
                    with timers.span("IO_WAVELET"):
                        stats = _dump(comm, config, grid, origin_cells, step,
                                      timers, tracer, sanitizer=sanitizer)
                        compression_stats.extend(stats)

            # -- lossless checkpoints (atomic, rotated generations) ----------
            if config.checkpoint_interval and step % config.checkpoint_interval == 0:
                from ..resilience.detect import CheckpointWriteError
                from .checkpoint import (
                    checkpoint_path,
                    prune_checkpoints,
                    write_checkpoint,
                )

                with timers.span("CHECKPOINT"):
                    ck_path = checkpoint_path(config.checkpoint_dir, step)
                    try:
                        write_checkpoint(
                            comm, ck_path, grid.to_array(), origin_cells, t,
                            step, injector=injector,
                        )
                    except CheckpointWriteError:
                        # Degrade: previous generations are intact, the
                        # campaign keeps computing (failure already counted
                        # by the writer on rank 0).
                        if comm.rank == 0 and injector is not None:
                            injector.recovered("io_fail")
                    else:
                        if comm.rank == 0 and config.checkpoint_keep:
                            pruned = prune_checkpoints(
                                config.checkpoint_dir, config.checkpoint_keep
                            )
                            if injector is not None:
                                injector.count("ckpt_generations_pruned",
                                               len(pruned))
                                injector.set_counter(
                                    "ckpt_generations_kept",
                                    min(config.checkpoint_keep,
                                        step // config.checkpoint_interval),
                                )

            records.append(
                StepRecord(step=step, time=t, dt=dt, diagnostics=diag,
                           timers=dict(timers))
            )

            # -- step-level observability ----------------------------
            if flight is not None:
                _flight_step(
                    flight, step, t, dt, now() - step_t0, dict(timers),
                    flight_state, grid, ncells, conservation0,
                    sanitizer, injector, solver.last_schedule,
                )
            if progress is not None:
                sched = solver.last_schedule
                progress.step(
                    step, sim_time=t, dt=dt,
                    imbalance=(sched.imbalance if sched is not None
                               else None),
                )

    finally:
        # Chaos runs crash ranks mid-loop; the recorder handle must
        # release (flushing the shared sink on last close) regardless.
        if flight is not None:
            flight.close()

    wall_seconds = now() - wall_t0
    return RankResult(
        rank=comm.rank,
        records=records,
        field=grid.to_array() if config.collect_final_field else None,
        origin_cells=origin_cells,
        timers=dict(timers),
        bytes_sent=comm.bytes_sent,
        messages_sent=comm.messages_sent,
        compression_stats=compression_stats,
        wall_damage=damage.damage if damage is not None else None,
        sanitizer_report=sanitizer.report if sanitizer is not None else None,
        wall_seconds=wall_seconds,
        telemetry=tracer.snapshot(wall_seconds) if tracer is not None else None,
        trace_events=(
            list(tracer.events)
            if tracer is not None and tracer.mode == "trace" else None
        ),
    )


def _dump(
    comm: SimComm,
    config: SimulationConfig,
    grid: BlockGrid,
    origin_cells: tuple[int, int, int],
    step: int,
    timers: PhaseTimers,
    tracer=None,
    sanitizer=None,
) -> list[dict]:
    """Compress and collectively write p and Gamma (one file each).

    ``sanitizer`` (an optional
    :class:`repro.analysis.sanitizer.NumericsSanitizer`) checks the FWT
    input fields for NaN/Inf before they reach the wavelet transform,
    labelling findings with the dumped quantity name.
    """
    fld = grid.to_array()
    quantities = {
        "p": (pressure_field(fld).astype(STORAGE_DTYPE), config.eps_pressure),
        "Gamma": (fld[..., GAMMA].astype(STORAGE_DTYPE), config.eps_gamma),
    }
    if sanitizer is not None:
        for name, (data, _) in quantities.items():
            sanitizer.check_finite(
                data, where=f"FWT ({sanitizer.context})", field=name
            )
    out = []
    for name, (data, eps) in quantities.items():
        compressor = WaveletCompressor(
            eps=eps,
            block_size=min(config.block_size, 32),
            num_threads=config.num_workers,
            guaranteed=config.dump_guaranteed,
        )
        with timers.span("IO_FWT"):
            cf = compressor.compress(data)
        path = os.path.join(config.dump_dir, f"dump_step{step:06d}_{name}.rwz")
        with timers.span("IO_WRITE"):
            ws = write_compressed_parallel(
                comm, path, name, cf,
                rank_meta={"origin_cells": list(origin_cells)},
            )
        if tracer is not None:
            tracer.count("fwt_cells", data.size)
            tracer.count("io_raw_bytes", cf.stats.raw_bytes)
            tracer.count("io_compressed_bytes", cf.stats.compressed_bytes)
        out.append(
            {
                "step": step,
                "quantity": name,
                "rate": cf.stats.rate,
                "raw_bytes": cf.stats.raw_bytes,
                "compressed_bytes": cf.stats.compressed_bytes,
                "write_seconds": ws.seconds,
                "dec_seconds": float(cf.stats.dec_seconds.sum()),
                "enc_seconds": float(
                    sum(s.seconds for s in cf.stats.enc_stats)
                ),
            }
        )
    return out


def _conservation_sums(grid: BlockGrid) -> tuple[float, float]:
    """Rank-local (mass, energy) sums of the grid (tuple of floats).

    Summed block-wise -- never through ``grid.to_array()``, whose full
    assembly would blow the flight recorder's < 5 % overhead budget.
    """
    mass = 0.0
    energy = 0.0
    for block in grid.blocks.values():
        mass += float(block.data[..., RHO].sum())
        energy += float(block.data[..., ENERGY].sum())
    return mass, energy


def _flight_step(flight, step, t, dt, step_wall, cum_timers, state, grid,
                 ncells, conservation0, sanitizer, injector,
                 schedule) -> None:
    """Append one ``(step, rank)`` record to the flight stream.

    The driver accumulates phase timers and event tallies cumulatively;
    this converts them into per-step deltas (previous totals tracked in
    ``state``) so every record is self-contained: per-phase wall times,
    instantaneous throughput, sanitizer/resilience event counts,
    conservation drift vs the initial state and the node-level schedule
    summary.
    """
    phases = {}
    prev = state["timers"]
    for name, total in cum_timers.items():
        delta = total - prev.get(name, 0.0)
        if delta > 0.0:
            phases[name] = delta
    state["timers"] = cum_timers

    fields: dict = {
        "t": t,
        "dt": dt,
        "wall": step_wall,
        "phases": phases,
        "gcells_per_s": safe_rate(
            ncells, step_wall, "flight_degenerate_step_wall") / 1e9,
    }
    mass0, energy0 = conservation0
    mass, energy = _conservation_sums(grid)
    fields["drift"] = {
        "mass": safe_rate(mass - mass0, abs(mass0),
                          "flight_degenerate_drift"),
        "energy": safe_rate(energy - energy0, abs(energy0),
                            "flight_degenerate_drift"),
    }
    if sanitizer is not None:
        seen = len(sanitizer.report)
        fields["sanitizer_events"] = seen - state["sanitizer"]
        state["sanitizer"] = seen
    if injector is not None:
        seen = int(sum(injector.counters.values()))
        fields["resilience_events"] = seen - state["resilience"]
        state["resilience"] = seen
    if schedule is not None:
        fields["schedule"] = schedule.to_dict()
    flight.record(step, **fields)


class Simulation:
    """Single-process facade over the SPMD driver.

    Example::

        from repro.sim import SimulationConfig
        from repro.cluster import Simulation
        from repro.sim.ic import uniform

        sim = Simulation(SimulationConfig(cells=32, block_size=16,
                                          max_steps=10), uniform())
        result = sim.run()
        print(result.series("max_pressure"))
    """

    def __init__(self, config: SimulationConfig, ic_fn,
                 restart_from: str | None = None, injector=None):
        self.config = config
        self.ic_fn = ic_fn
        self.restart_from = restart_from
        self.injector = injector

    def run(self) -> RunResult:
        from .mpi_sim import DEFAULT_TIMEOUT

        tracker = make_tracker(self.config.concurrency_check)
        timeout = (self.config.comm_timeout
                   if self.config.comm_timeout is not None
                   else DEFAULT_TIMEOUT)
        if self.config.cluster_backend == "procs":
            from .procs import ProcsWorld

            world = ProcsWorld(
                self.config.ranks,
                timeout=timeout,
                injector=self.injector,
                tracker=tracker,
                ring_bytes=self.config.procs_ring_bytes,
            )
        else:
            world = SimWorld(
                self.config.ranks,
                timeout=timeout,
                injector=self.injector,
                tracker=tracker,
            )
        try:
            rank_results: list[RankResult] = world.run(
                rank_main, self.config, self.ic_fn, self.restart_from,
                self.injector
            )
        except WorldError as we:
            # Unwrap sanitizer/concurrency aborts: when every failed rank
            # raised the same violation-carrying error, re-raise one
            # merged error so callers see the findings directly instead
            # of the SPMD wrapper.  Teardown aborts of surviving ranks
            # are not primary causes and do not block the unwrap.
            failures = list(we.primary_failures.values())
            if failures and all(
                isinstance(f, NumericsViolationError) for f in failures
            ):
                merged: list = []
                for f in failures:
                    merged.extend(f.violations)
                raise NumericsViolationError(merged) from we
            if failures and all(
                isinstance(f, ConcurrencyViolationError) for f in failures
            ):
                merged = []
                for f in failures:
                    merged.extend(f.violations)
                raise ConcurrencyViolationError(merged) from we
            raise
        finally:
            # Multi-process flight recordings land as per-rank part
            # files; merge them into the final single-header stream
            # even when the run failed (a chaos attempt's flushed
            # prefix must stay readable).
            if (self.config.cluster_backend == "procs"
                    and self.config.flight_out):
                from ..telemetry import merge_flight_parts

                merge_flight_parts(self.config.flight_out)

        final = None
        if self.config.collect_final_field:
            cells = tuple(self.config.cells)
            final = np.zeros(cells + (NQ,), dtype=STORAGE_DTYPE)
            for rr in rank_results:
                oz, oy, ox = rr.origin_cells
                sz, sy, sx = rr.field.shape[:3]
                final[oz : oz + sz, oy : oy + sy, ox : ox + sx] = rr.field

        # Phase timers: mean over ranks.
        keys = set().union(*(rr.timers for rr in rank_results))
        timers = {
            k: float(np.mean([rr.timers.get(k, 0.0) for rr in rank_results]))
            for k in keys
        }
        reports = [
            rr.sanitizer_report
            for rr in rank_results
            if rr.sanitizer_report is not None
        ]
        snapshots = [
            rr.telemetry for rr in rank_results if rr.telemetry is not None
        ]
        return RunResult(
            records=rank_results[0].records,
            final_field=final,
            timers=timers,
            rank_results=rank_results,
            config=self.config,
            sanitizer_report=(
                ViolationReport.merged(reports) if reports else None
            ),
            wall_seconds=max(rr.wall_seconds for rr in rank_results),
            telemetry=(
                MetricsSnapshot.merged(snapshots) if snapshots else None
            ),
            concurrency_report=tracker.report if tracker is not None else None,
        )
