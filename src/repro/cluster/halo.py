"""Inter-rank ghost (halo) exchange.

"During the evaluation of the RHS, blocks are divided in two parts: halo
and interior.  Non-blocking point-to-point communications are performed to
exchange ghost information for the halo blocks.  Every rank sends 6
messages to its adjacent neighbors ...  While waiting for the messages,
the rank dispatches the interior blocks to the node layer." (paper
Section 6)

:class:`HaloExchange` implements exactly that protocol on the simulated
communicator: :meth:`start` packs the six face slabs and posts the
non-blocking sends/receives, :meth:`finish` waits and returns a ghost
provider the node layer consults for rank-boundary blocks.

Every slab travels as a checksummed :class:`~repro.resilience.detect.HaloFrame`
(CRC32 computed before transport), so an in-transit bit flip is caught on
receive as a :class:`~repro.resilience.detect.HaloCorruptionError` rather
than silently entering the stencil.  Transient send failures (injected or
real) are retried in place with bounded jittered backoff.
"""

from __future__ import annotations

import numpy as np

from ..core.block import GHOSTS
from ..node.grid import BlockGrid
from ..physics.state import NQ, STORAGE_DTYPE
from ..resilience.detect import HaloFrame, crc32_array
from .mpi_sim import Request, SimComm
from .topology import CartTopology


def _face_tag(axis: int, side: int) -> int:
    """Message tag identifying the *sending* face."""
    return axis * 2 + (0 if side == -1 else 1)


def extract_face_slab(grid: BlockGrid, axis: int, side: int, width: int = GHOSTS) -> np.ndarray:
    """Assemble the ``width``-cell slab at one face of the rank subdomain.

    The slab spans the full subdomain face; shape is the subdomain cell
    extent with ``axis`` replaced by ``width`` (plus the quantity axis).
    """
    nz, ny, nx = grid.cells
    shape = [nz, ny, nx, NQ]
    shape[axis] = width
    out = np.empty(shape, dtype=STORAGE_DTYPE)
    n = grid.block_size
    b_edge = 0 if side == -1 else grid.num_blocks[axis] - 1
    for idx, block in grid.blocks.items():
        if idx[axis] != b_edge:
            continue
        slab = block.face_slab(axis, side, width)
        sel: list[slice] = []
        for d in range(3):
            if d == axis:
                sel.append(slice(0, width))
            else:
                sel.append(slice(idx[d] * n, (idx[d] + 1) * n))
        out[tuple(sel)] = slab
    return out


class RemoteGhostProvider:
    """Serves per-block ghost slabs out of the received face buffers.

    Implements the node layer's ghost-provider protocol:
    ``provider(block_index, axis, side) -> slab or None``.  ``None`` means
    the face is a physical domain boundary and the node layer should apply
    the boundary condition.
    """

    def __init__(self, grid: BlockGrid, face_buffers: dict[tuple[int, int], np.ndarray]):
        self._grid = grid
        self._buffers = face_buffers

    def __call__(self, block_index: tuple[int, int, int], axis: int, side: int):
        buf = self._buffers.get((axis, side))
        if buf is None:
            return None
        n = self._grid.block_size
        sel: list[slice] = []
        for d in range(3):
            if d == axis:
                sel.append(slice(None))
            else:
                b = block_index[d]
                sel.append(slice(b * n, (b + 1) * n))
        return buf[tuple(sel)]


class HaloExchange:
    """Non-blocking six-message halo exchange for one rank.

    ``tracer`` is an optional :class:`repro.telemetry.Tracer`; when set,
    :meth:`start` counts the posted messages and ghost bytes
    (``halo_messages`` / ``halo_bytes``) for the run metrics snapshot.

    ``injector`` is an optional
    :class:`~repro.resilience.inject.FaultInjector` used as the
    resilience monitor (CRC detections, comm retries); ``retry`` is the
    :class:`~repro.resilience.recover.RetryPolicy` bounding the
    transient-send backoff (a default policy when omitted).
    """

    def __init__(self, comm: SimComm, topo: CartTopology, grid: BlockGrid,
                 tracer=None, injector=None, retry=None):
        from ..resilience.recover import RetryPolicy

        self.comm = comm
        self.topo = topo
        self.grid = grid
        self.tracer = tracer
        self.injector = injector
        # Desynchronize backoff jitter across ranks via the seed.
        self.retry = retry or RetryPolicy(seed=2013 + comm.rank)
        self._neighbors = topo.neighbors(comm.rank)

    def halo_split(self) -> tuple[list, list]:
        """Split the rank's blocks into (interior, halo) lists.

        A block is *halo* if any of its faces touches a rank face with a
        live neighbor (its ghosts depend on a message); all other blocks
        are interior and can be computed while messages are in flight.
        Both lists preserve SFC dispatch order.
        """
        interior, halo = [], []
        B = self.grid.num_blocks
        for block in self.grid.sfc_blocks():
            is_halo = False
            for axis in range(3):
                for side in (-1, 1):
                    edge = 0 if side == -1 else B[axis] - 1
                    if block.index[axis] == edge and self._neighbors[(axis, side)] is not None:
                        is_halo = True
            (halo if is_halo else interior).append(block)
        return interior, halo

    def _send_frame(self, frame: HaloFrame, nbr: int, tag: int) -> None:
        """Post one checksummed face send, retrying transient failures."""
        from ..resilience.inject import TransientCommError
        from ..resilience.recover import retry_transient

        def on_retry(attempt: int, exc: TransientCommError) -> None:
            if self.injector is not None:
                self.injector.count("comm_retries")
                self.injector.detected("comm_transient")
                self.injector.recovered("comm_transient")

        retry_transient(lambda: self.comm.isend(frame, nbr, tag=tag),
                        self.retry, on_retry=on_retry)

    def start(self) -> dict[tuple[int, int], Request]:
        """Pack and post the sends/receives; returns pending receives."""
        pending: dict[tuple[int, int], Request] = {}
        for axis in range(3):
            for side in (-1, 1):
                nbr = self._neighbors[(axis, side)]
                if nbr is None:
                    continue
                slab = extract_face_slab(self.grid, axis, side)
                # Checksum before transport so receive-side verification
                # catches any in-transit corruption.
                frame = HaloFrame(crc=crc32_array(slab), payload=slab)
                # Tag with *our* sending face; the receiver matches on the
                # opposite face of the same axis.
                self._send_frame(frame, nbr, tag=_face_tag(axis, side))
                pending[(axis, side)] = self.comm.irecv(
                    source=nbr, tag=_face_tag(axis, -side)
                )
                if self.tracer is not None:
                    self.tracer.count("halo_messages")
                    self.tracer.count("halo_bytes", slab.nbytes)
        return pending

    def finish(self, pending: dict[tuple[int, int], Request]) -> RemoteGhostProvider:
        """Wait for all receives, verify CRCs, build the ghost provider.

        Raises :class:`~repro.resilience.detect.HaloCorruptionError` when
        a received frame fails its checksum (counted as a
        ``msg_corrupt`` detection on the injector first).
        """
        from ..resilience.detect import HaloCorruptionError

        buffers: dict[tuple[int, int], np.ndarray] = {}
        for (axis, side), req in pending.items():
            frame = req.wait()
            if isinstance(frame, HaloFrame):
                try:
                    frame.verify(source=self._neighbors[(axis, side)],
                                 axis=axis, side=side)
                except HaloCorruptionError:
                    if self.injector is not None:
                        self.injector.detected("msg_corrupt")
                    raise
                buffers[(axis, side)] = frame.payload
            else:  # pre-framing peer (plain slab): accept unchecked
                buffers[(axis, side)] = frame
        return RemoteGhostProvider(self.grid, buffers)

    def exchange(self) -> RemoteGhostProvider:
        """Blocking convenience: start + finish."""
        return self.finish(self.start())

    def message_bytes(self) -> dict[tuple[int, int], int]:
        """Per-face message sizes (the paper quotes 3--30 MB per message)."""
        sizes = {}
        nz, ny, nx = self.grid.cells
        extents = {0: ny * nx, 1: nz * nx, 2: nz * ny}
        for (axis, side), nbr in self._neighbors.items():
            if nbr is not None:
                sizes[(axis, side)] = GHOSTS * extents[axis] * NQ * np.dtype(
                    STORAGE_DTYPE
                ).itemsize
        return sizes
