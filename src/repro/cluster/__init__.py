"""Cluster layer: domain decomposition and inter-rank exchange.

"The cluster layer is responsible for the domain decomposition and the
inter-rank information exchange." (paper Section 6)

Two interchangeable communicator backends share one API surface and the
paper's control flow (non-blocking halo exchange overlapped with
interior-block computation, max-allreduce for the time step, and an
exclusive prefix sum ahead of collective compressed writes):

* :mod:`repro.cluster.mpi_sim` -- ranks as threads of one interpreter
  (deterministic, debuggable, race-trackable); the default.
* :mod:`repro.cluster.procs` -- ranks as real OS processes exchanging
  CRC-framed messages through shared-memory rings (real multi-core
  scaling; bit-identical results).

Select per run with ``SimulationConfig.cluster_backend``; see
``docs/cluster.md`` for the backend matrix.
"""

from .checkpoint import (
    checkpoint_path,
    list_checkpoints,
    prune_checkpoints,
    read_checkpoint_field,
    read_checkpoint_meta,
    write_checkpoint,
)
from .driver import RankResult, RunResult, Simulation, StepRecord, rank_main
from .halo import HaloExchange, RemoteGhostProvider, extract_face_slab
from .mpi_sim import (
    ANY_SOURCE,
    ANY_TAG,
    CommTimeoutError,
    Request,
    SimComm,
    SimWorld,
    WorldAbortError,
    WorldError,
)
from .procs import ProcsComm, ProcsWorld, RankLostError, RingCorruptionError
from .topology import CartTopology, balanced_dims, feasible_rank_counts

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CartTopology",
    "CommTimeoutError",
    "HaloExchange",
    "ProcsComm",
    "ProcsWorld",
    "RankLostError",
    "RankResult",
    "RemoteGhostProvider",
    "Request",
    "RingCorruptionError",
    "RunResult",
    "SimComm",
    "SimWorld",
    "Simulation",
    "StepRecord",
    "WorldAbortError",
    "WorldError",
    "balanced_dims",
    "checkpoint_path",
    "extract_face_slab",
    "feasible_rank_counts",
    "list_checkpoints",
    "prune_checkpoints",
    "rank_main",
    "read_checkpoint_field",
    "read_checkpoint_meta",
    "write_checkpoint",
]
