"""Process-parallel SPMD communicator: ranks as real OS processes.

:mod:`repro.cluster.mpi_sim` executes every rank as a *thread* of one
interpreter -- faithful control flow, zero real node scaling (the GIL
serializes everything outside NumPy kernels).  This module provides the
second backend behind the same Communicator API: each rank is a real
process (``multiprocessing`` spawn context) and messages move through
**shared-memory ring buffers** (:class:`multiprocessing.shared_memory`),
so a multi-core host finally measures the paper's actual quantity --
wall-clock speedup from real parallel ranks (Fig. 9's strong scaling,
with measured rather than modeled numbers).

Design
------

* **Transport** -- one single-producer/single-consumer byte ring per
  ordered rank pair ``(src, dst)``.  A ring is one shared-memory
  segment: a 16-byte header (monotonic ``head``/``tail`` cursors,
  guarded by a ``multiprocessing.Lock``) plus a power-of-two data
  region written/read with wraparound.  Writers block (bounded by the
  world timeout) when a ring is full; readers drain whole rings into a
  per-source reassembly stream, so a selective receive can never
  deadlock on out-of-order traffic (eager protocol with local
  buffering, exactly like the thread backend's mailboxes).
* **Framing** -- every message travels as a CRC-framed record:
  ``magic | kind | source | tag | app_crc | wire_crc | meta | payload``.
  The *wire* CRC32 covers meta+payload and is verified on drain, so a
  corrupted shared-memory byte raises :class:`RingCorruptionError`
  instead of silently entering the stencil.  Halo payloads additionally
  keep their resilience-layer :class:`~repro.resilience.detect.HaloFrame`
  CRC end-to-end (``app_crc``), preserving the exact detection
  semantics of the thread backend.
* **Collectives** -- allreduce/bcast/gather/allgather/exscan/barrier
  run a dissemination (recursive-doubling gossip) exchange over the
  same rings: ``ceil(log2(P))`` rounds, rank ``r`` sending its known
  contribution set to ``r + 2^k`` and merging the set received from
  ``r - 2^k``.  The final reduction is applied as a *rank-ordered left
  fold over the complete contribution set* -- bit-identical to the
  thread backend's rendezvous combiner, which is what makes the
  cross-backend differential tests exact.
* **Watchdog** -- a status board (one more shared segment) holds each
  rank's current blocking operation and step heartbeat plus the world
  abort flag.  A timed-out wait raises
  :class:`~repro.cluster.mpi_sim.DeadlockError` carrying the same
  per-rank pending-operation dump as the thread backend; a failing rank
  sets the abort flag so peers wake with
  :class:`~repro.cluster.mpi_sim.WorldAbortError` (MPI_Abort
  semantics) instead of running out their timeouts.
* **Chaos** -- ``rank_crash`` specs of a
  :class:`~repro.resilience.plan.FaultPlan` are consumed by the
  *parent*: a supervisor thread watches the step heartbeats and
  delivers a real ``SIGKILL`` to the addressed child -- a genuine
  process loss, not a simulated exception.  All other fault kinds are
  injected child-side by a cloned injector whose counters and consumed
  hits are merged back into the parent's ledger when the child exits.

Select the backend per run with ``SimulationConfig.cluster_backend`` /
``repro.cli run --cluster-backend={sim,procs}``; see ``docs/cluster.md``
for the selection matrix and the frame layout.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..resilience.detect import CorruptionError, HaloFrame, crc32_bytes

from .mpi_sim import (
    ANY_SOURCE,
    ANY_TAG,
    DEFAULT_TIMEOUT,
    OPS,
    CommTimeoutError,
    DeadlockError,
    Request,
    WorldAbortError,
    WorldError,
)

#: Payload kinds on the wire.
KIND_PICKLE = 0   #: arbitrary pickled python object
KIND_ARRAY = 1    #: raw ndarray bytes (dtype/shape in meta)
KIND_HALO = 2     #: HaloFrame: ndarray bytes + resilience-layer CRC
KIND_COLL = 3     #: collective-round contribution set (pickled dict)

#: Wire header: magic u32 | kind u8 | source i32 | tag i64 | app_crc u32
#: | wire_crc u32 | meta_len u32 | payload_len u64.
_HEADER = struct.Struct("<IBiqIIIQ")
_MAGIC = 0x52505246  # "RPRF"

#: Ring segment layout: head u64 | tail u64 | data[ring_bytes].
_RING_CTRL = struct.Struct("<QQ")
_RING_CTRL_BYTES = 16

#: Default per-pair ring capacity (bytes of in-flight messages).
DEFAULT_RING_BYTES = 1 << 22

#: Status board layout: abort u8 at offset 0, then 16-byte alignment,
#: then one _SLOT_BYTES slot per rank: state u8 | step u64 | oplen u16
#: | op bytes (utf-8, truncated).
_BOARD_PREFIX = 16
_SLOT_BYTES = 256
_SLOT_HEAD = struct.Struct("<BQH")
_OP_BYTES = _SLOT_BYTES - _SLOT_HEAD.size

#: Rank states on the status board.
STATE_RUNNING = 0
STATE_DONE = 1
STATE_FAILED = 2

#: Grace period (seconds) between observing a child's death and
#: declaring the rank lost -- a finished child's result may still be in
#: flight on the result queue.
_DEATH_GRACE = 1.0


class RingCorruptionError(CorruptionError):
    """A shared-memory frame failed its wire CRC32 (or its framing)."""


class RankLostError(RuntimeError):
    """A rank process died without reporting a result (real rank loss)."""


def _poll_sleep(polls: int) -> None:
    """Back off a busy wait: yield first, then sleep up to 1 ms."""
    if polls < 64:
        time.sleep(0)
    else:
        time.sleep(min(0.001, 0.0001 * (1 + polls // 64)))


# -- wire framing ---------------------------------------------------------


def encode_frame(source: int, tag: int, kind: int, payload: Any) -> bytes:
    """Serialize one message into its CRC-framed wire record (bytes)."""
    app_crc = 0
    if kind == KIND_HALO:
        arr = np.ascontiguousarray(payload.payload)
        meta = pickle.dumps((arr.dtype.str, arr.shape))
        body = arr.tobytes()
        app_crc = payload.crc
    elif kind == KIND_ARRAY:
        arr = np.ascontiguousarray(payload)
        meta = pickle.dumps((arr.dtype.str, arr.shape))
        body = arr.tobytes()
    else:
        meta = b""
        body = pickle.dumps(payload)
    # The wire CRC covers the whole record -- header fields included
    # (computed with the CRC slot zeroed), so a flipped source/tag byte
    # cannot silently misroute a frame.
    bare = _HEADER.pack(_MAGIC, kind, source, tag, app_crc, 0,
                        len(meta), len(body))
    wire_crc = crc32_bytes(bare + meta + body)
    header = _HEADER.pack(_MAGIC, kind, source, tag, app_crc, wire_crc,
                          len(meta), len(body))
    return header + meta + body


@dataclass
class _Frame:
    """One decoded in-flight message."""

    source: int
    tag: int
    kind: int
    payload: Any


def _decode_body(kind: int, app_crc: int, meta: bytes, body: bytes) -> Any:
    if kind in (KIND_ARRAY, KIND_HALO):
        dtype_str, shape = pickle.loads(meta)
        arr = np.empty(shape, dtype=np.dtype(dtype_str))
        arr.view(np.uint8).reshape(-1)[:] = np.frombuffer(body, np.uint8)
        return HaloFrame(crc=app_crc, payload=arr) if kind == KIND_HALO \
            else arr
    return pickle.loads(body)


def parse_frames(stream: bytearray, source_hint: int | None = None
                 ) -> list[_Frame]:
    """Extract every complete frame at the head of ``stream`` (list).

    Consumed bytes are removed from ``stream`` in place; a partial
    trailing frame stays buffered for the next drain.  Raises
    :class:`RingCorruptionError` on a bad magic or a wire-CRC mismatch
    -- a corrupted shared-memory byte must never silently pass.
    """
    frames: list[_Frame] = []
    while len(stream) >= _HEADER.size:
        (magic, kind, source, tag, app_crc, wire_crc, meta_len,
         payload_len) = _HEADER.unpack_from(stream, 0)
        if magic != _MAGIC:
            raise RingCorruptionError(
                f"ring stream from rank {source_hint}: bad frame magic "
                f"{magic:#010x} (framing corrupted)"
            )
        total = _HEADER.size + meta_len + payload_len
        if len(stream) < total:
            break
        meta = bytes(stream[_HEADER.size:_HEADER.size + meta_len])
        body = bytes(stream[_HEADER.size + meta_len:total])
        del stream[:total]
        bare = _HEADER.pack(magic, kind, source, tag, app_crc, 0,
                            meta_len, payload_len)
        actual = crc32_bytes(bare + meta + body)
        if actual != wire_crc:
            raise RingCorruptionError(
                f"frame from rank {source} (tag {tag}) failed its wire "
                f"CRC32: expected {wire_crc:#010x}, got {actual:#010x}"
            )
        frames.append(_Frame(source, tag, kind,
                             _decode_body(kind, app_crc, meta, body)))
    return frames


# -- shared-memory transport ----------------------------------------------


_ATTACH_LOCK = threading.Lock()


def _attach(name: str):
    """Attach an existing shared-memory segment without tracker claims.

    The *parent* created (and unlinks) every segment, and all processes
    of a world share one resource-tracker process, so a child attach
    must leave the tracker ledger alone: Python 3.11 registers on
    attach too, and a later explicit unregister would remove the
    parent's sole entry (tracker KeyError noise at unlink).  The
    registration call is suppressed for the duration of the attach.
    """
    from multiprocessing import resource_tracker, shared_memory

    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class Ring:
    """One SPSC byte ring over a shared-memory segment.

    ``lock`` guards only the head/tail cursors; the data region needs
    none (the cursors partition it between the single writer and the
    single reader).  Cursors are monotonic byte counts -- ``tail -
    head`` is the number of unread bytes, never more than ``capacity``.
    """

    def __init__(self, segment, lock, capacity: int):
        self._seg = segment
        self._lock = lock
        self.capacity = capacity

    def _cursors(self) -> tuple[int, int]:
        with self._lock:
            return _RING_CTRL.unpack_from(self._seg.buf, 0)

    def _advance_tail(self, n: int) -> None:
        with self._lock:
            head, tail = _RING_CTRL.unpack_from(self._seg.buf, 0)
            _RING_CTRL.pack_into(self._seg.buf, 0, head, tail + n)

    def _advance_head(self, n: int) -> None:
        with self._lock:
            head, tail = _RING_CTRL.unpack_from(self._seg.buf, 0)
            _RING_CTRL.pack_into(self._seg.buf, 0, head + n, tail)

    def write(self, data: bytes, deadline: float,
              abort_check: Callable[[], bool] | None = None) -> None:
        """Append ``data``, blocking while the ring is full.

        Raises :class:`~repro.cluster.mpi_sim.CommTimeoutError` past
        ``deadline`` and :class:`~repro.cluster.mpi_sim.WorldAbortError`
        when ``abort_check`` fires (a peer failed; unblock immediately).
        """
        view = memoryview(data)
        offset = 0
        polls = 0
        cap = self.capacity
        while offset < len(data):
            head, tail = self._cursors()
            free = cap - (tail - head)
            if free == 0:
                if abort_check is not None and abort_check():
                    raise WorldAbortError(
                        "world aborted while waiting for ring space"
                    )
                if time.monotonic() > deadline:
                    raise CommTimeoutError(
                        f"ring write stalled: peer consumed nothing for "
                        f"the timeout window ({len(data) - offset} bytes "
                        f"left)"
                    )
                _poll_sleep(polls)
                polls += 1
                continue
            polls = 0
            n = min(free, len(data) - offset)
            pos = tail % cap
            first = min(n, cap - pos)
            base = _RING_CTRL_BYTES
            self._seg.buf[base + pos:base + pos + first] = \
                view[offset:offset + first]
            if n > first:
                self._seg.buf[base:base + (n - first)] = \
                    view[offset + first:offset + n]
            self._advance_tail(n)
            offset += n

    def drain(self) -> bytes:
        """Consume and return every unread byte (empty when idle)."""
        head, tail = self._cursors()
        avail = tail - head
        if avail == 0:
            return b""
        cap = self.capacity
        pos = head % cap
        first = min(avail, cap - pos)
        base = _RING_CTRL_BYTES
        out = bytes(self._seg.buf[base + pos:base + pos + first])
        if avail > first:
            out += bytes(self._seg.buf[base:base + (avail - first)])
        self._advance_head(avail)
        return out


class _StatusBoard:
    """The world's shared status segment: abort flag + per-rank slots."""

    def __init__(self, segment, size: int):
        self._seg = segment
        self.size = size

    @staticmethod
    def nbytes(size: int) -> int:
        return _BOARD_PREFIX + size * _SLOT_BYTES

    def set_abort(self) -> None:
        self._seg.buf[0] = 1

    def aborted(self) -> bool:
        return self._seg.buf[0] == 1

    def _slot(self, rank: int) -> int:
        return _BOARD_PREFIX + rank * _SLOT_BYTES

    def set_state(self, rank: int, state: int) -> None:
        base = self._slot(rank)
        _, step, oplen = _SLOT_HEAD.unpack_from(self._seg.buf, base)
        _SLOT_HEAD.pack_into(self._seg.buf, base, state, step, oplen)

    def set_step(self, rank: int, step: int) -> None:
        base = self._slot(rank)
        state, _, oplen = _SLOT_HEAD.unpack_from(self._seg.buf, base)
        _SLOT_HEAD.pack_into(self._seg.buf, base, state, step, oplen)

    def set_op(self, rank: int, op: str) -> None:
        base = self._slot(rank)
        raw = op.encode("utf-8")[:_OP_BYTES]
        self._seg.buf[base + _SLOT_HEAD.size:
                      base + _SLOT_HEAD.size + len(raw)] = raw
        state, step, _ = _SLOT_HEAD.unpack_from(self._seg.buf, base)
        _SLOT_HEAD.pack_into(self._seg.buf, base, state, step, len(raw))

    def clear_op(self, rank: int) -> None:
        base = self._slot(rank)
        state, step, _ = _SLOT_HEAD.unpack_from(self._seg.buf, base)
        _SLOT_HEAD.pack_into(self._seg.buf, base, state, step, 0)

    def read(self, rank: int) -> tuple[int, int, str]:
        """``(state, step, pending_op)`` of one rank slot."""
        base = self._slot(rank)
        state, step, oplen = _SLOT_HEAD.unpack_from(self._seg.buf, base)
        raw = bytes(self._seg.buf[base + _SLOT_HEAD.size:
                                  base + _SLOT_HEAD.size + oplen])
        return state, step, raw.decode("utf-8", errors="replace")

    def deadlock_report(self) -> str:
        """The watchdog dump: every rank's pending operation (str)."""
        lines = ["deadlock watchdog: pending operation per rank:"]
        for r in range(self.size):
            state, step, op = self.read(r)
            label = op or "not blocked in comm"
            if state == STATE_DONE:
                label = "finished"
            elif state == STATE_FAILED:
                label = f"failed ({op or 'no pending op'})"
            lines.append(f"  rank {r}: {label} [step {step}]")
        return "\n".join(lines)


def _ring_name(token: str, src: int, dst: int) -> str:
    return f"rpr{token}r{src}x{dst}"


def _board_name(token: str) -> str:
    return f"rpr{token}st"


@dataclass
class WorldSpec:
    """Everything a child needs to join the world (picklable).

    ``locks`` maps ``(src, dst)`` to the ring's cursor lock --
    multiprocessing primitives survive pickling only through Process
    inheritance, which is exactly how the spec travels.
    """

    token: str
    size: int
    timeout: float
    ring_bytes: int
    locks: dict


class ProcsComm:
    """Communicator bound to one rank of a :class:`ProcsWorld`.

    Mirrors the :class:`~repro.cluster.mpi_sim.SimComm` API surface the
    driver, halo exchange and checkpoint writer consume.
    """

    #: Ranks are OS processes; process-aware consumers (the flight
    #: recorder) key off this to avoid cross-process file contention.
    process_parallel = True

    def __init__(self, spec: WorldSpec, rank: int, injector: Any = None):
        self.rank = rank
        self.size = spec.size
        self.timeout = spec.timeout
        self.injector = injector
        self.bytes_sent = 0
        self.messages_sent = 0
        self._gen = 0  #: collective sequence number (per rank)
        self._board: _StatusBoard | None = None
        self._out: dict[int, Ring] = {}
        self._in: dict[int, Ring] = {}
        self._streams: dict[int, bytearray] = {}
        try:
            self._board = _StatusBoard(_attach(_board_name(spec.token)),
                                       spec.size)
            for peer in range(spec.size):
                if peer == rank:
                    continue
                self._out[peer] = Ring(
                    _attach(_ring_name(spec.token, rank, peer)),
                    spec.locks[(rank, peer)], spec.ring_bytes,
                )
                self._in[peer] = Ring(
                    _attach(_ring_name(spec.token, peer, rank)),
                    spec.locks[(peer, rank)], spec.ring_bytes,
                )
                self._streams[peer] = bytearray()
        except BaseException:
            # A mid-loop attach failure (e.g. the parent already tore
            # the world down) must detach whatever was mapped so far.
            self.close()
            raise
        self._pending: list[_Frame] = []

    # -- plumbing ---------------------------------------------------------

    def publish_step(self, step: int) -> None:
        """Heartbeat hook: expose the driver's current step to the
        parent supervisor (step-addressed SIGKILL injection)."""
        self._board.set_step(self.rank, step)

    def _aborted(self) -> bool:
        return self._board.aborted()

    def _drain_all(self) -> None:
        """Pull every complete frame out of the incoming rings."""
        for src, ring in self._in.items():
            chunk = ring.drain()
            if chunk:
                stream = self._streams[src]
                stream.extend(chunk)
                self._pending.extend(parse_frames(stream, source_hint=src))

    def _match(self, source: int, tag: int, kind_coll: bool) -> _Frame | None:
        for i, frame in enumerate(self._pending):
            if (frame.kind == KIND_COLL) != kind_coll:
                continue
            if source not in (ANY_SOURCE, frame.source):
                continue
            if tag not in (ANY_TAG, frame.tag):
                continue
            return self._pending.pop(i)
        return None

    def _deadlock_error(self, op: str) -> DeadlockError:
        report = self._board.deadlock_report()
        unread = [
            (f.source, f.tag) for f in self._pending
            if f.kind != KIND_COLL
        ]
        report += "\nlocally buffered unmatched frames: " + (
            ", ".join(f"(source={s}, tag={t})" for s, t in unread)
            or "none (the matching send was never posted)"
        )
        return DeadlockError(f"rank {self.rank}: {op} timed out", report)

    def _wait_frame(self, source: int, tag: int, kind_coll: bool,
                    op: str, timeout: float | None) -> _Frame:
        deadline = time.monotonic() + (self.timeout if timeout is None else timeout)
        self._board.set_op(self.rank, op)
        polls = 0
        try:
            while True:
                frame = self._match(source, tag, kind_coll)
                if frame is not None:
                    return frame
                self._drain_all()
                frame = self._match(source, tag, kind_coll)
                if frame is not None:
                    return frame
                if self._aborted():
                    raise WorldAbortError(
                        f"world aborted while waiting for {op}"
                    )
                if time.monotonic() > deadline:
                    raise self._deadlock_error(op)
                _poll_sleep(polls)
                polls += 1
        finally:
            self._board.clear_op(self.rank)

    # -- point to point ---------------------------------------------------

    def _payload_bytes(self, obj: Any) -> int:
        # ndarray payloads and checksummed frames both expose ``nbytes``.
        return int(getattr(obj, "nbytes", 0))

    def _frame_kind(self, obj: Any) -> int:
        if isinstance(obj, HaloFrame):
            return KIND_HALO
        if isinstance(obj, np.ndarray):
            return KIND_ARRAY
        return KIND_PICKLE

    def _push(self, dest: int, tag: int, kind: int, payload: Any,
              op: str) -> None:
        """Frame and ship one message (self-sends loop back locally)."""
        wire = encode_frame(self.rank, tag, kind, payload)
        if dest == self.rank:
            # Periodic single-rank topologies exchange with themselves;
            # loop the decoded frame straight into the pending store.
            stream = bytearray(wire)
            self._pending.extend(parse_frames(stream, source_hint=dest))
            return
        self._board.set_op(self.rank, op)
        try:
            self._out[dest].write(wire, deadline=time.monotonic() + self.timeout,
                                  abort_check=self._aborted)
        except DeadlockError:
            raise
        except CommTimeoutError:
            raise self._deadlock_error(op) from None
        finally:
            self._board.clear_op(self.rank)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send through the shared-memory ring to ``dest``.

        With a fault injector attached, the payload passes through its
        transport hook first (drop / delay / corrupt / transient
        failure), exactly as on the thread backend.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        payload = obj
        if self.injector is not None:
            from ..resilience.inject import DROPPED

            payload = self.injector.on_send(self.rank, dest, payload)
            if payload is DROPPED:
                return
        self.bytes_sent += self._payload_bytes(payload)
        self.messages_sent += 1
        self._push(dest, tag, self._frame_kind(payload), payload,
                   op=f"send(dest={dest}, tag={tag})")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: float | None = None) -> Any:
        """Blocking selective receive; ``timeout=None`` uses the world
        timeout.  A timeout raises the watchdog's
        :class:`~repro.cluster.mpi_sim.DeadlockError` with the
        cross-rank pending-operation dump."""
        frame = self._wait_frame(
            source, tag, kind_coll=False,
            op=f"recv(source={source}, tag={tag})", timeout=timeout,
        )
        return frame.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)  # buffered: completes on ring write
        return Request(lambda _t: None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(lambda t: self.recv(source, tag, timeout=t))

    # Uppercase aliases for NumPy arrays (mpi4py convention).
    Send = send
    Recv = recv
    Isend = isend
    Irecv = irecv

    # -- collectives -------------------------------------------------------

    def _gossip(self, value: Any, label: str) -> dict[int, Any]:
        """Dissemination allgather: the full contribution set (dict).

        ``ceil(log2(P))`` rounds of doubling gossip; after round ``k``
        every rank knows at least ``2**(k+1)`` contributions, so the
        set is complete when the rounds run out.  Round frames are
        matched exactly by ``(source, gen, round)`` -- rings are FIFO
        per pair and every rank executes collectives in program order.
        """
        gen = self._gen
        self._gen += 1
        known: dict[int, Any] = {self.rank: value}
        rounds = max(0, self.size - 1).bit_length()
        for k in range(rounds):
            dest = (self.rank + (1 << k)) % self.size
            src = (self.rank - (1 << k)) % self.size
            round_tag = (gen << 8) | k
            op = f"{label} (gen {gen}, round {k})"
            self._push(dest, round_tag, KIND_COLL, known, op=op)
            frame = self._wait_frame(src, round_tag, kind_coll=True,
                                     op=op, timeout=None)
            known.update(frame.payload)
        if len(known) != self.size:
            raise RuntimeError(
                f"{label}: dissemination exchange ended with "
                f"{len(known)}/{self.size} contributions"
            )
        return known

    def barrier(self) -> None:
        self._gossip(None, label="barrier")

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce scalars/arrays with ``op`` in ('sum', 'max', 'min').

        The fold is applied over the gathered contributions in rank
        order -- the identical association order as the thread
        backend's rendezvous combiner, so float reductions agree
        bit-for-bit across backends.
        """
        fn = OPS[op]
        slot = self._gossip(value, label=f"allreduce({op})")
        acc = None
        for r in sorted(slot):
            acc = slot[r] if acc is None else fn(acc, slot[r])
        return acc

    def bcast(self, value: Any, root: int = 0) -> Any:
        slot = self._gossip(value if self.rank == root else None,
                            label="bcast")
        return slot[root]

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        slot = self._gossip(value, label="gather")
        if self.rank != root:
            return None
        return [slot[r] for r in sorted(slot)]

    def allgather(self, value: Any) -> list[Any]:
        slot = self._gossip(value, label="allgather")
        return [slot[r] for r in sorted(slot)]

    def exscan(self, value: Any, op: str = "sum") -> Any:
        """Exclusive prefix reduction (rank 0 receives the identity)."""
        fn = OPS[op]
        slot = self._gossip(value, label=f"exscan({op})")
        acc = None
        for r in sorted(slot):
            if r == self.rank:
                break
            acc = slot[r] if acc is None else fn(acc, slot[r])
        if acc is None:
            # Identity element: 0 for scalars, zeros for arrays.
            if isinstance(value, np.ndarray):
                return np.zeros_like(value)
            return type(value)(0)
        return acc

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from every shared segment (child-side cleanup).

        Idempotent, and safe on a partially constructed comm (the
        ``__init__`` error path calls it mid-attach).
        """
        for ring in list(self._out.values()) + list(self._in.values()):
            ring._seg.close()
        self._out.clear()
        self._in.clear()
        if self._board is not None:
            self._board._seg.close()
            self._board = None


def _child_entry(rank: int, spec: WorldSpec, main, args, result_q) -> None:
    """The per-rank child process body (spawn target).

    Runs ``main(comm, *args)`` and reports ``(rank, status, payload,
    counters, hits)`` on the result queue; any failure sets the world
    abort flag so blocked peers wake immediately (MPI_Abort
    semantics).  Injector counters and consumed fault hits ride along
    so the parent can merge them into the campaign ledger.
    """
    injector = next(
        (a for a in args if a is not None and hasattr(a, "on_send")
         and hasattr(a, "counters")),
        None,
    )
    comm = ProcsComm(spec, rank, injector=injector)
    if injector is not None:
        injector.step_listener = lambda _rank, step: comm.publish_step(step)
    counters: dict = {}
    hits: list = []

    def _snapshot() -> None:
        # Single-threaded child process: no concurrent writers exist.
        if injector is not None:
            counters.update(injector.counters)  # lint: disable=CL011
            hits.extend(injector.hit_state())  # lint: disable=CL011

    try:
        result = main(comm, *args)
        _snapshot()
        comm._board.set_state(rank, STATE_DONE)
        result_q.put((rank, "ok", result, counters, hits))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent  # lint: disable=CL005
        _snapshot()
        comm._board.set_state(rank, STATE_FAILED)
        if not isinstance(exc, WorldAbortError):
            comm._board.set_abort()
        try:
            pickle.dumps(exc)
            payload = exc
        except Exception:  # noqa: BLE001 - unpicklable exception  # lint: disable=CL005
            payload = RuntimeError(f"rank {rank} failed: {exc!r}")
        result_q.put((rank, "err", payload, counters, hits))
    finally:
        comm.close()


class ProcsWorld:
    """A set of ranks executing an SPMD program as real OS processes.

    Drop-in peer of :class:`~repro.cluster.mpi_sim.SimWorld`::

        world = ProcsWorld(size=4)
        results = world.run(main, *args)   # main(comm, *args) per rank

    ``main`` and every argument must be picklable (spawn semantics).
    ``run`` returns the per-rank return values in rank order and
    re-raises rank failures as
    :class:`~repro.cluster.mpi_sim.WorldError` -- including *real*
    process deaths (``SIGKILL``), reported as :class:`RankLostError`.

    ``injector`` (a :class:`~repro.resilience.inject.FaultInjector`)
    keeps chaos semantics: ``rank_crash`` specs are consumed
    parent-side and delivered as real ``SIGKILL``s at the addressed
    step heartbeat; all other kinds inject child-side through a cloned
    injector whose ledger merges back on exit.

    The runtime race tracker is thread-based and cannot observe
    separate address spaces; ``tracker`` must stay ``None``.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT,
                 injector: Any | None = None, tracker: Any | None = None,
                 ring_bytes: int = DEFAULT_RING_BYTES):
        if size < 1:
            raise ValueError("world size must be >= 1")
        if tracker is not None:
            raise ValueError(
                "the procs backend has no runtime race tracker (ranks "
                "share no address space); run concurrency_check on the "
                "sim backend"
            )
        if ring_bytes < 1 << 16:
            raise ValueError("ring_bytes must be >= 65536")
        self.size = size
        self.timeout = timeout
        self.injector = injector
        self.ring_bytes = ring_bytes

    # -- segment lifecycle ------------------------------------------------

    def _create_segments(self, token: str):
        from multiprocessing import shared_memory

        segments = []
        try:
            board_seg = shared_memory.SharedMemory(
                name=_board_name(token), create=True,
                size=_StatusBoard.nbytes(self.size),
            )
            board_seg.buf[:_StatusBoard.nbytes(self.size)] = \
                bytes(_StatusBoard.nbytes(self.size))
            segments.append(board_seg)
            for src in range(self.size):
                for dst in range(self.size):
                    if src == dst:
                        continue
                    seg = shared_memory.SharedMemory(
                        name=_ring_name(token, src, dst), create=True,
                        size=_RING_CTRL_BYTES + self.ring_bytes,
                    )
                    _RING_CTRL.pack_into(seg.buf, 0, 0, 0)
                    segments.append(seg)
        except BaseException:
            # A mid-loop failure (name collision, /dev/shm full) must
            # not orphan the segments already created: /dev/shm
            # persists past process exit.
            for seg in segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
            raise
        return board_seg, segments

    def _child_args(self, args: tuple) -> tuple:
        """Substitute child-safe injector clones into the SPMD args.

        ``rank_crash`` is disabled child-side: the parent delivers it
        as a real ``SIGKILL`` instead of a simulated exception.
        """
        if self.injector is None:
            return args
        clone = self.injector.child_clone(disable_kinds=("rank_crash",))
        return tuple(clone if a is self.injector else a for a in args)

    def _start_killer(self, board: _StatusBoard, procs: list,
                      stop: threading.Event) -> threading.Thread | None:
        """Arm the parent-side SIGKILL supervisor for rank_crash specs."""
        inj = self.injector
        if inj is None or not any(
            spec.kind == "rank_crash" for spec in inj.plan.faults
        ):
            return None

        def watch() -> None:
            last_seen = [0] * self.size
            while not stop.is_set():
                for r, proc in enumerate(procs):
                    if proc.exitcode is not None:
                        continue
                    _, step, _ = board.read(r)
                    for s in range(last_seen[r] + 1, step + 1):
                        if inj.fire("rank_crash", r, s):
                            board.set_abort()
                            if proc.pid is not None:
                                os.kill(proc.pid, signal.SIGKILL)
                    last_seen[r] = max(last_seen[r], step)
                stop.wait(0.002)

        t = threading.Thread(target=watch, name="procs-killer", daemon=True)
        t.start()
        return t

    # -- the run loop ------------------------------------------------------

    def run(self, main: Callable[..., Any], *args: Any) -> list[Any]:
        import queue as queue_mod
        from multiprocessing import get_context

        ctx = get_context("spawn")
        token = f"{os.getpid():x}{os.urandom(4).hex()}"
        result_q = ctx.Queue()
        stop = threading.Event()
        procs: list = []
        segments: list = []
        killer: threading.Thread | None = None
        results: dict[int, Any] = {}
        failures: dict[int, BaseException] = {}
        killed_note: dict[int, str] = {}
        try:
            # Segments are created inside the try so a failure anywhere
            # below (lock allocation, spawn, the wait loop) still
            # reaches the unlink in the finally.
            board_seg, segments = self._create_segments(token)
            board = _StatusBoard(board_seg, self.size)
            locks = {
                (src, dst): ctx.Lock()
                for src in range(self.size)
                for dst in range(self.size)
                if src != dst
            }
            spec = WorldSpec(token=token, size=self.size,
                             timeout=self.timeout,
                             ring_bytes=self.ring_bytes, locks=locks)
            child_args = self._child_args(args)
            for rank in range(self.size):
                p = ctx.Process(
                    target=_child_entry,
                    args=(rank, spec, main, child_args, result_q),
                    name=f"procs-rank-{rank}",
                )
                p.start()
                procs.append(p)
            killer = self._start_killer(board, procs, stop)

            death_seen: dict[int, float] = {}
            while len(results) + len(failures) < self.size:
                try:
                    rank, status, payload, counters, hits = result_q.get(
                        timeout=0.05
                    )
                except queue_mod.Empty:
                    pass
                else:
                    if self.injector is not None:
                        self.injector.merge_child(counters, hits)
                    if status == "ok":
                        results[rank] = payload
                    else:
                        failures[rank] = payload
                    continue
                # No result in flight: look for ranks that died without
                # reporting (real process loss, e.g. SIGKILL).
                for r, proc in enumerate(procs):
                    if r in results or r in failures or r in death_seen:
                        continue
                    if proc.exitcode is not None:
                        death_seen[r] = time.monotonic()
                for r, t0 in list(death_seen.items()):
                    if r in results or r in failures:
                        del death_seen[r]
                        continue
                    if time.monotonic() - t0 >= _DEATH_GRACE:
                        code = procs[r].exitcode
                        failures[r] = RankLostError(
                            f"rank {r} process died without a result "
                            f"(exitcode {code})"
                            + killed_note.get(r, "")
                        )
                        del death_seen[r]
                        board.set_abort()
        finally:
            stop.set()
            if killer is not None:
                # The killer polls the status board; join it before the
                # segments it reads are closed and unlinked below.
                killer.join(timeout=1.0)
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            result_q.close()
            result_q.join_thread()
            for seg in segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        if failures:
            raise WorldError(failures)
        return [results[r] for r in range(self.size)]
