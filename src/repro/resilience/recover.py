"""Recovery: bounded retries, checkpoint rollback, supervised relaunch.

Three recovery tiers, matched to the fault taxonomy:

1. **Retry with backoff** (:func:`retry_transient`): transient
   point-to-point failures are retried in place with bounded, jittered
   exponential backoff -- the cheapest tier, invisible above the halo
   exchange.
2. **Degrade** (driver-level): a failed collective dump or checkpoint
   write becomes a counted skip; the campaign keeps computing.
3. **Rollback and relaunch** (:class:`ResilientSimulation`): anything
   that kills the SPMD world -- rank loss, corrupted halo payload, recv
   timeout -- rolls the campaign back to the newest *verified*
   checkpoint generation and relaunches, optionally on a shrunk rank
   count (graceful degradation).  Verified means: magic ok, every
   rank-block CRC ok, blocks tile the global box exactly, SDC screen
   clean -- a generation failing any check falls back to the previous
   one.

Because the solver is deterministic, a rollback recovery is *bit-exact*:
the recovered campaign ends in the identical field an unfaulted run
produces (asserted by the chaos tests).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace

from ..telemetry.clock import wall_now
from .detect import CheckpointCorruptError
from .inject import FaultInjector, InjectedRankCrash, TransientCommError
from .plan import FaultPlan

# NOTE: repro.cluster imports happen inside functions: the cluster layer
# imports repro.resilience.detect at module scope, so a module-level
# import here would be circular during package initialization.


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff for transient comm faults.

    ``max_attempts`` bounds total tries (the final failure re-raises);
    sleep before retry ``k`` is ``base_delay * factor**k``, capped at
    ``max_delay``, times a seeded jitter in ``[1, 1 + jitter]`` --
    deterministic per policy instance, desynchronized across sites via
    ``seed``.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    factor: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5
    seed: int = 2013

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


def retry_transient(fn, policy: RetryPolicy, on_retry=None):
    """Call ``fn`` under ``policy``; returns its result.

    Retries only :class:`TransientCommError` (anything else propagates
    immediately); re-raises the last transient error once the attempt
    bound is exhausted.  ``on_retry(attempt, exc)`` is called before
    each backoff sleep.
    """
    import time

    rng = random.Random(policy.seed)
    delay = policy.base_delay
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except TransientCommError as exc:
            if attempt == policy.max_attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(min(policy.max_delay, delay) *
                       (1.0 + policy.jitter * rng.random()))
            delay *= policy.factor


def verify_checkpoint(path: str):
    """Fully validate one checkpoint generation.

    Returns ``(field, t, step)`` -- the stitched global field -- after
    magic/CRC/coverage/shape validation (the reader's checks) plus the
    SDC screen on the restored state.  Raises
    :class:`~repro.resilience.detect.CheckpointCorruptError` (or
    ``OSError`` for unreadable files) otherwise.
    """
    from ..cluster.checkpoint import read_checkpoint_field
    from .detect import screen_restored_state

    field_, t, step = read_checkpoint_field(path)
    screen_restored_state(field_, where=path)
    return field_, t, step


def find_latest_verified_checkpoint(
    ckpt_dir: str, injector: FaultInjector | None = None
) -> tuple[int, str] | None:
    """Newest generation in ``ckpt_dir`` that passes full verification.

    Returns ``(step, path)`` or ``None`` when no generation survives.
    Rejected generations are counted on the injector
    (``detected_ckpt_bitflip`` / ``checkpoints_rejected``) -- corrupted
    generations *fall back* to the previous one rather than aborting.
    """
    from ..cluster.checkpoint import list_checkpoints

    for step, path in reversed(list_checkpoints(ckpt_dir)):
        try:
            verify_checkpoint(path)
        except (CheckpointCorruptError, OSError, EOFError) as exc:
            if injector is not None:
                # Falling back to the previous generation IS the
                # recovery from a corrupt checkpoint.
                injector.detected("ckpt_bitflip")
                injector.recovered("ckpt_bitflip")
                injector.count("checkpoints_rejected")
                injector.set_counter("last_rejected_step", step)
            else:
                import warnings

                warnings.warn(f"skipping corrupt checkpoint {path}: {exc}",
                              stacklevel=2)
            continue
        return step, path
    return None


@dataclass
class RecoveryEvent:
    """One supervised recovery action (rollback / shrink / restart)."""

    attempt: int              #: 1-based failed attempt number
    kind: str                 #: classified fault kind (taxonomy or "unknown")
    cause: str                #: repr of the primary failure
    action: str               #: "rollback" | "restart_scratch"
    checkpoint_step: int | None  #: generation resumed from (None = scratch)
    ranks: int                #: rank count of the relaunch
    wall_seconds_lost: float  #: wall time of the failed attempt


class ResilienceExhaustedError(RuntimeError):
    """The supervised driver ran out of recovery attempts."""

    def __init__(self, events: list[RecoveryEvent], last: BaseException):
        self.events = events
        self.last_failure = last
        super().__init__(
            f"recovery exhausted after {len(events)} attempt(s); "
            f"last failure: {last!r}"
        )


@dataclass
class ResilientRunResult:
    """Outcome of a supervised campaign: final result + recovery ledger."""

    result: object            #: the successful RunResult
    attempts: int             #: total attempts (1 = no recovery needed)
    events: list[RecoveryEvent] = field(default_factory=list)
    injector: FaultInjector | None = None
    total_wall_seconds: float = 0.0
    final_wall_seconds: float = 0.0

    @property
    def recovery_overhead(self) -> float:
        """Wall-clock fraction spent on failed attempts (float in [0, 1))."""
        if self.total_wall_seconds <= 0.0:
            return 0.0
        lost = self.total_wall_seconds - self.final_wall_seconds
        return max(0.0, lost / self.total_wall_seconds)

    @property
    def counters(self) -> dict[str, float]:
        """The injector's resilience counters (dict; empty if no injector)."""
        return dict(self.injector.counters) if self.injector else {}


def _classify_failure(exc: BaseException, plan: FaultPlan) -> tuple[str, BaseException]:
    """Map a world failure to a taxonomy kind; returns (kind, primary)."""
    from ..cluster.mpi_sim import CommTimeoutError, WorldError

    primary = exc
    if isinstance(exc, WorldError):
        prim = exc.primary_failures or exc.failures
        primary = next(iter(prim.values()))
        for e in prim.values():  # the most specific cause wins
            if isinstance(e, InjectedRankCrash):
                return "rank_crash", e
        # Real process loss on the procs backend (e.g. an injected
        # SIGKILL): the rank is gone, same recovery path as a crash.
        from ..cluster.procs import RankLostError

        for e in prim.values():
            if isinstance(e, RankLostError):
                return "rank_crash", e
        from .detect import HaloCorruptionError

        for e in prim.values():
            if isinstance(e, HaloCorruptionError):
                return "msg_corrupt", e
        for e in prim.values():
            if isinstance(e, CommTimeoutError):
                kind = "msg_drop" if "msg_drop" in plan.kinds() else "timeout"
                return kind, e
    if isinstance(primary, CheckpointCorruptError):
        return "ckpt_bitflip", primary
    return "unknown", primary


class ResilientSimulation:
    """Supervised driver loop: run, and on world failure roll back.

    Wraps :class:`repro.cluster.driver.Simulation`.  On a
    :class:`~repro.cluster.mpi_sim.WorldError` the supervisor

    1. classifies and counts the failure (``detected_<kind>``),
    2. locates the newest *verified* checkpoint generation in
       ``config.checkpoint_dir`` (corrupt generations fall back),
    3. relaunches from it -- optionally on a shrunk, still-feasible rank
       count when ``config.recovery_shrink`` is set and the failure was
       a rank loss,
    4. gives up with :class:`ResilienceExhaustedError` after
       ``config.max_recoveries`` recoveries.

    Numerics violations (a deterministic divergence would simply recur)
    propagate immediately.
    """

    def __init__(self, config, ic_fn, restart_from: str | None = None,
                 injector: FaultInjector | None = None):
        self.config = config
        self.ic_fn = ic_fn
        self.restart_from = restart_from
        plan = config.fault_plan if isinstance(config.fault_plan, FaultPlan) \
            else None
        self.injector = injector or FaultInjector(plan)

    def _shrunk_ranks(self, current: int) -> int:
        """Largest feasible rank count below ``current`` (int >= 1)."""
        from ..cluster.topology import feasible_rank_counts

        feasible = [
            n for n in feasible_rank_counts(self.config.global_blocks, current)
            if n < current
        ]
        return feasible[-1] if feasible else current

    def run(self) -> ResilientRunResult:
        """Execute the campaign to completion; returns the ledger.

        Returns a :class:`ResilientRunResult` whose ``result`` is the
        final successful ``RunResult``.
        """
        from ..cluster.driver import Simulation
        from ..cluster.mpi_sim import WorldError

        inj = self.injector
        events: list[RecoveryEvent] = []
        restart = self.restart_from
        ranks = self.config.ranks
        attempt = 0
        t_campaign = wall_now()
        while True:
            attempt += 1
            cfg = replace(self.config, ranks=ranks) \
                if ranks != self.config.ranks else self.config
            sim = Simulation(cfg, self.ic_fn, restart_from=restart,
                             injector=inj)
            t_attempt = wall_now()
            try:
                result = sim.run()
                total = wall_now() - t_campaign
                final = wall_now() - t_attempt
                inj.set_counter("recovery_attempts", attempt - 1)
                return ResilientRunResult(
                    result=result,
                    attempts=attempt,
                    events=events,
                    injector=inj,
                    total_wall_seconds=total,
                    final_wall_seconds=final,
                )
            except WorldError as we:
                lost = wall_now() - t_attempt
                kind, primary = _classify_failure(we, inj.plan)
                inj.detected(kind)
                if len(events) >= self.config.max_recoveries:
                    raise ResilienceExhaustedError(events, we) from we

                found = find_latest_verified_checkpoint(
                    cfg.checkpoint_dir, injector=inj
                )
                if found is None:
                    restart, ckpt_step, action = None, None, "restart_scratch"
                else:
                    ckpt_step, restart = found
                    action = "rollback"
                if (self.config.recovery_shrink and kind == "rank_crash"
                        and ranks > 1):
                    ranks = self._shrunk_ranks(ranks)
                events.append(RecoveryEvent(
                    attempt=attempt,
                    kind=kind,
                    cause=repr(primary),
                    action=action,
                    checkpoint_step=ckpt_step,
                    ranks=ranks,
                    wall_seconds_lost=lost,
                ))
                inj.recovered(kind)
                inj.count("rollbacks")


def prune_stale_tmp(ckpt_dir: str) -> int:
    """Remove abandoned ``*.tmp`` checkpoint files; returns count removed.

    A crash between the temporary write and the atomic rename leaves a
    ``.tmp`` behind; it is never a valid generation, so the supervisor
    (or an operator) can sweep it safely.
    """
    removed = 0
    if not os.path.isdir(ckpt_dir):
        return 0
    for name in os.listdir(ckpt_dir):
        if name.endswith(".tmp"):
            try:
                os.remove(os.path.join(ckpt_dir, name))
                removed += 1
            except OSError as exc:
                import warnings

                warnings.warn(f"could not remove {name}: {exc}", stacklevel=2)
    return removed
