"""Resilience scorecard: faults injected/detected/recovered, overhead.

Extends the paper-style run scorecard (:mod:`repro.telemetry.scorecard`)
with the durability section a long campaign needs reviewed after every
chaos run: per-kind fault accounting (did every injected fault get
detected?  recovered?), the recovery ledger (rollbacks, attempts,
wall-clock overhead) and the checkpoint cost model (generations kept,
write amplification).
"""

from __future__ import annotations

from ..perf.report import format_table
from .plan import KINDS
from .recover import ResilientRunResult

#: Acceptance bound: recovery overhead must stay below this fraction of
#: total campaign wall time for the chaos smoke to pass.
MAX_RECOVERY_OVERHEAD = 0.20


def fault_accounting(rres: ResilientRunResult) -> list[dict]:
    """Per-kind injected/detected/recovered rows (list[dict]).

    A kind is ``ok`` when every injected fault was both detected and
    recovered; kinds never injected are omitted.  Detection can exceed
    injection (a corrupt generation may be re-inspected by later
    rollbacks), so the check is ``detected >= injected``.
    """
    c = rres.counters
    rows = []
    for kind in KINDS:
        injected = c.get(f"injected_{kind}", 0)
        if not injected:
            continue
        detected = c.get(f"detected_{kind}", 0)
        recovered = c.get(f"recovered_{kind}", 0)
        ok = detected >= injected and recovered >= injected
        rows.append({
            "fault": kind,
            "injected": int(injected),
            "detected": int(detected),
            "recovered": int(recovered),
            "status": "ok" if ok else "MISSED",
        })
    return rows


def checkpoint_write_amplification(rres: ResilientRunResult) -> float:
    """Physical checkpoint bytes over one retained generation (float).

    ``ckpt_bytes_written`` counts every byte that hit storage (headers,
    failed/abandoned temporaries, superseded generations, rewrites after
    rollback); ``ckpt_generation_bytes`` is the size of the newest
    successful generation.  The ratio is the write amplification of the
    durability scheme; 0.0 when no checkpoint was ever written.
    """
    c = rres.counters
    gen = c.get("ckpt_generation_bytes", 0)
    if not gen:
        return 0.0
    return c.get("ckpt_bytes_written", 0) / gen


def resilience_scorecard_rows(rres: ResilientRunResult) -> list[dict]:
    """All scorecard rows of one supervised run (list[dict]).

    Fault-accounting rows first, then summary rows (attempts, rollbacks,
    skipped dumps, recovery overhead vs the acceptance bound, checkpoint
    write amplification); render with
    :func:`repro.perf.report.format_table`.
    """
    c = rres.counters
    rows = fault_accounting(rres)
    rows.append({
        "fault": "attempts",
        "injected": rres.attempts,
        "status": f"{int(c.get('rollbacks', 0))} rollback(s)",
    })
    if c.get("comm_retries"):
        rows.append({
            "fault": "comm retries",
            "injected": int(c["comm_retries"]),
            "status": "backoff",
        })
    if c.get("dumps_skipped"):
        rows.append({
            "fault": "dumps skipped",
            "injected": int(c["dumps_skipped"]),
            "status": "degraded",
        })
    if c.get("checkpoints_failed"):
        rows.append({
            "fault": "ckpt writes failed",
            "injected": int(c["checkpoints_failed"]),
            "status": "degraded",
        })
    overhead = rres.recovery_overhead
    rows.append({
        "fault": "recovery overhead",
        "share [%]": 100.0 * overhead,
        "status": (f"<= {100 * MAX_RECOVERY_OVERHEAD:.0f}% ok"
                   if overhead <= MAX_RECOVERY_OVERHEAD
                   else f"EXCEEDS {100 * MAX_RECOVERY_OVERHEAD:.0f}% bound"),
    })
    amp = checkpoint_write_amplification(rres)
    if amp:
        rows.append({
            "fault": "ckpt write amplification",
            "ratio": amp,
            "status": f"{int(c.get('ckpt_generations_kept', 0))} gen kept",
        })
    return rows


def format_resilience_scorecard(rres: ResilientRunResult) -> str:
    """Human-readable resilience scorecard of one supervised run (str)."""
    title = ("Resilience scorecard (faults, recovery, checkpoint "
             "durability)")
    body = format_table(resilience_scorecard_rows(rres), title,
                        floatfmt="{:.4g}")
    if rres.events:
        lines = [body, "", "recovery ledger:"]
        for ev in rres.events:
            where = (f"rolled back to step {ev.checkpoint_step}"
                     if ev.action == "rollback" else "restarted from scratch")
            lines.append(
                f"  attempt {ev.attempt}: {ev.kind} -> {where} on "
                f"{ev.ranks} rank(s) ({ev.wall_seconds_lost:.2f} s lost)"
            )
        return "\n".join(lines)
    return body


def all_faults_recovered(rres: ResilientRunResult) -> bool:
    """Whether every injected fault was detected and recovered (bool)."""
    return all(r["status"] == "ok" for r in fault_accounting(rres))
