"""Corruption detection: CRC32 framing, header validation, SDC screens.

Silent data corruption is the fault class checkpointing alone cannot
handle -- a bit flip in a halo payload or a stored rank-block restarts
into a *plausible but wrong* field.  This module holds the detection
primitives the cluster layer applies at its trust boundaries:

* :func:`crc32_bytes` / :func:`crc32_array` -- the checksums stamped on
  halo messages and checkpoint rank-blocks;
* :class:`HaloFrame` -- the checksummed wire format of the halo
  exchange, verified on receive;
* :class:`CheckpointCorruptError` / :class:`HaloCorruptionError` --
  localized corruption diagnoses (both :class:`ValueError` subclasses,
  matching the pre-resilience reader's error contract);
* :func:`screen_restored_state` -- the sanitizer-style SDC screen run
  over a restored checkpoint field before a rank resumes from it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..physics.state import GAMMA, NQ, RHO


def crc32_bytes(data: bytes) -> int:
    """CRC32 of a byte string (int in [0, 2**32))."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_array(arr: np.ndarray) -> int:
    """CRC32 over an array's C-contiguous bytes (int in [0, 2**32))."""
    return crc32_bytes(np.ascontiguousarray(arr).tobytes())


class CorruptionError(ValueError):
    """Detected data corruption (checksum, header or physics screen)."""


class HaloCorruptionError(CorruptionError):
    """A received halo payload failed its CRC32 check."""


class CheckpointCorruptError(CorruptionError):
    """A checkpoint failed magic/CRC/coverage/shape/SDC validation."""


class CheckpointWriteError(RuntimeError):
    """A collective checkpoint write failed on at least one rank.

    Raised on *every* rank (the failure flag is allreduced) so the SPMD
    program stays collectively consistent; the temporary file is removed
    and the previous generations stay intact.
    """


@dataclass
class HaloFrame:
    """Checksummed halo message: CRC32 stamped at pack time.

    The CRC is computed over the payload *before* it enters the
    transport, so any in-transit flip (injected or real) is caught by
    :meth:`verify` on the receiving rank.
    """

    crc: int
    payload: np.ndarray

    @property
    def nbytes(self) -> int:
        """Payload bytes (int) -- keeps the communicator's traffic
        accounting identical to sending the bare array."""
        return self.payload.nbytes

    def verify(self, source: int, axis: int, side: int) -> np.ndarray:
        """Returns the payload after checking its CRC (ndarray).

        Raises :class:`HaloCorruptionError` naming the sending rank and
        face on mismatch.
        """
        actual = crc32_array(self.payload)
        if actual != self.crc:
            raise HaloCorruptionError(
                f"halo payload from rank {source} (axis {axis}, side "
                f"{side:+d}) failed CRC32: expected {self.crc:#010x}, "
                f"got {actual:#010x}"
            )
        return self.payload


def screen_restored_state(field: np.ndarray, where: str = "checkpoint") -> None:
    """SDC screen over a restored AoS field; raises on violations.

    A flipped bit that survives the payload CRC (e.g. corruption before
    the checksum was computed) lands here: the restored state must be
    finite everywhere with positive density and positive Gamma -- the
    same invariants :mod:`repro.analysis.sanitizer` enforces at runtime.
    Raises :class:`CheckpointCorruptError` localized to the first
    offending cell.
    """
    if field.ndim != 4 or field.shape[-1] != NQ:
        raise CheckpointCorruptError(
            f"{where}: restored field has shape {field.shape}, expected "
            f"(nz, ny, nx, {NQ})"
        )
    bad = ~np.isfinite(field)
    if bad.any():
        cell = tuple(int(i) for i in np.argwhere(bad)[0])
        raise CheckpointCorruptError(
            f"{where}: non-finite value at cell {cell[:3]} quantity "
            f"{cell[3]}"
        )
    for q, name, floor in ((RHO, "density", 0.0), (GAMMA, "Gamma", 0.0)):
        vals = field[..., q]
        if (vals <= floor).any():
            cell = tuple(int(i) for i in np.argwhere(vals <= floor)[0])
            raise CheckpointCorruptError(
                f"{where}: non-positive {name} at cell {cell} "
                f"(min {float(vals.min()):.6g})"
            )
