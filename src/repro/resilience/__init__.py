"""Fault injection, corruption detection and automatic recovery.

The durability layer of the reproduction (see ``docs/resilience.md``):

* :class:`FaultPlan` / :class:`FaultSpec` -- declarative, seeded,
  step/rank-addressable chaos specs (JSON round-trippable for
  ``repro.cli --fault-plan``);
* :class:`FaultInjector` -- arms a plan at the cluster-layer injection
  sites and doubles as the thread-safe resilience monitor;
* :mod:`repro.resilience.detect` -- CRC32 halo framing, checkpoint
  validation errors and the SDC screen on restored state;
* :class:`ResilientSimulation` -- the supervised driver loop: retry
  with bounded jittered backoff, degrade failed writes to counted
  skips, roll back to the newest verified checkpoint generation and
  relaunch (optionally on a shrunk rank count);
* :func:`format_resilience_scorecard` -- the chaos-run scorecard
  (faults injected/detected/recovered, recovery overhead, checkpoint
  write amplification).
"""

from .detect import (
    CheckpointCorruptError,
    CheckpointWriteError,
    CorruptionError,
    HaloCorruptionError,
    HaloFrame,
    crc32_array,
    crc32_bytes,
    screen_restored_state,
)
from .inject import (
    DROPPED,
    FaultInjector,
    InjectedFault,
    InjectedIOError,
    InjectedRankCrash,
    TransientCommError,
)
from .plan import KINDS, FaultPlan, FaultSpec
from .recover import (
    RecoveryEvent,
    ResilienceExhaustedError,
    ResilientRunResult,
    ResilientSimulation,
    RetryPolicy,
    find_latest_verified_checkpoint,
    prune_stale_tmp,
    retry_transient,
    verify_checkpoint,
)
from .report import (
    MAX_RECOVERY_OVERHEAD,
    all_faults_recovered,
    checkpoint_write_amplification,
    fault_accounting,
    format_resilience_scorecard,
    resilience_scorecard_rows,
)

__all__ = [
    "DROPPED",
    "KINDS",
    "MAX_RECOVERY_OVERHEAD",
    "CheckpointCorruptError",
    "CheckpointWriteError",
    "CorruptionError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HaloCorruptionError",
    "HaloFrame",
    "InjectedFault",
    "InjectedIOError",
    "InjectedRankCrash",
    "RecoveryEvent",
    "ResilienceExhaustedError",
    "ResilientRunResult",
    "ResilientSimulation",
    "RetryPolicy",
    "TransientCommError",
    "all_faults_recovered",
    "checkpoint_write_amplification",
    "crc32_array",
    "crc32_bytes",
    "fault_accounting",
    "find_latest_verified_checkpoint",
    "format_resilience_scorecard",
    "prune_stale_tmp",
    "resilience_scorecard_rows",
    "retry_transient",
    "screen_restored_state",
    "verify_checkpoint",
]
