"""Runtime fault injection: the chaos engine arming a :class:`FaultPlan`.

One :class:`FaultInjector` is shared by every rank thread of a
:class:`~repro.cluster.mpi_sim.SimWorld` *and* by every relaunch attempt
of a supervised campaign -- that persistence is what makes recovery
testable: a ``max_hits``-bounded crash consumed on attempt 1 does not
fire again after the rollback, exactly like a real node loss.

The injector doubles as the campaign's resilience monitor: thread-safe
``counters`` accumulate injected/detected/recovered totals per fault
kind plus bookkeeping the scorecard reports (dumps skipped, checkpoint
bytes written, comm retries).  An injector armed with an empty plan is a
valid pure monitor.

Injection sites (see ``docs/resilience.md`` for the taxonomy):

* :meth:`at_step` -- driver step loop: ``rank_crash`` / ``straggler``;
* :meth:`on_send` -- communicator point-to-point path:
  ``comm_transient`` / ``msg_drop`` / ``msg_delay`` / ``msg_corrupt``;
* :meth:`io_fails` -- dump and checkpoint writers: ``io_fail``;
* :meth:`corrupt_checkpoint_payload` -- checkpoint writer:
  ``ckpt_bitflip``.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np

from .detect import HaloFrame
from .plan import FaultPlan, FaultSpec

#: Sentinel returned by :meth:`FaultInjector.on_send` for dropped
#: messages (``None`` is a legitimate payload).
DROPPED = object()


class InjectedFault(RuntimeError):
    """Base class of all injector-raised faults."""


class InjectedRankCrash(InjectedFault):
    """An injected rank loss (the thread dies at a step boundary)."""


class TransientCommError(InjectedFault):
    """A transient point-to-point failure; retry with backoff."""


class InjectedIOError(InjectedFault, OSError):
    """An injected storage write failure."""


class FaultInjector:
    """Arms a :class:`FaultPlan`; consulted at the injection sites.

    Thread-safe: rank threads share one instance.  Probabilistic specs
    draw from per-spec ``random.Random`` streams seeded by
    ``(plan.seed, spec_index)`` so a plan replays identically regardless
    of rank interleaving *per spec*.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._hits = [0] * len(self.plan.faults)
        self._rngs = [
            random.Random(f"{self.plan.seed}:{i}")
            for i in range(len(self.plan.faults))
        ]
        self._flip_rng = random.Random(f"{self.plan.seed}:bitflip")
        self._steps: dict[int, int] = {}  #: rank -> current 1-based step
        self.counters: dict[str, float] = {}
        #: Spec kinds this instance must never fire (the procs backend
        #: disables ``rank_crash`` child-side: the parent supervisor
        #: delivers it as a real SIGKILL instead).
        self.disabled_kinds: frozenset[str] = frozenset()
        #: Optional ``fn(rank, step)`` called on :meth:`begin_step` --
        #: the procs backend publishes step heartbeats through it.
        self.step_listener = None

    # -- cross-process support (the procs cluster backend) ---------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]          # not picklable; recreated on load
        state["step_listener"] = None  # process-local callback
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def child_clone(self, disable_kinds: tuple[str, ...] = ()
                    ) -> "FaultInjector":
        """A child-process injector sharing this plan (FaultInjector).

        The clone starts from the parent's *current* consumed-hit state
        (so hits spent on earlier relaunch attempts stay spent) with
        zeroed counters -- the child reports counter *deltas* the
        parent folds back via :meth:`merge_child`.  ``disable_kinds``
        are never fired by the clone.
        """
        clone = FaultInjector(self.plan)
        with self._lock:
            clone._hits = list(self._hits)
        clone.disabled_kinds = frozenset(disable_kinds)
        return clone

    def merge_child(self, counters: dict, hits: list) -> None:
        """Fold a child injector's ledger back into this one.

        Counter values add (they are deltas); consumed-hit counts take
        the elementwise max (the child saw a superset of the parent's
        state for the specs it armed).
        """
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for i, h in enumerate(hits[:len(self._hits)]):
                if h > self._hits[i]:
                    self._hits[i] = h

    def hit_state(self) -> list[int]:
        """Snapshot of per-spec consumed hits (list of int)."""
        with self._lock:
            return list(self._hits)

    def reseed(self, salt) -> None:
        """Re-derive the probabilistic fault streams for a retry attempt.

        A retried job must not deterministically refire the same
        probabilistic faults: each spec's RNG stream (and the bit-flip
        stream) is re-derived from ``(plan.seed, spec index, salt)``.
        Consumed-hit state is preserved -- ``max_hits``-bounded faults
        stay spent -- and the physics seed (which lives in the request,
        not the plan) is untouched, so the *result* of the retry is
        still bit-identical to a fault-free run.
        """
        with self._lock:
            self._rngs = [
                random.Random(f"{self.plan.seed}:{i}:retry{salt}")
                for i in range(len(self.plan.faults))
            ]
            self._flip_rng = random.Random(
                f"{self.plan.seed}:bitflip:retry{salt}"
            )

    def fire(self, kind: str, rank: int, step: int | None,
             target: str | None = None) -> bool:
        """Public firing check: consume a matching armed spec (bool).

        Used by the procs backend's parent-side SIGKILL supervisor,
        which replays observed heartbeat steps through the plan.
        """
        return self._fires(kind, rank, step, target=target) is not None

    # -- bookkeeping ------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named resilience counter (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite the named counter (gauge semantics)."""
        with self._lock:
            self.counters[name] = value

    def detected(self, kind: str, n: float = 1) -> None:
        """Record ``n`` detections of faults of ``kind``."""
        self.count(f"detected_{kind}", n)

    def recovered(self, kind: str, n: float = 1) -> None:
        """Record ``n`` recoveries from faults of ``kind``."""
        self.count(f"recovered_{kind}", n)

    def injected(self, kind: str) -> float:
        """Total injected faults of ``kind`` so far (float)."""
        with self._lock:
            return self.counters.get(f"injected_{kind}", 0)

    def begin_step(self, rank: int, step: int) -> None:
        """Record the 1-based step ``rank`` is about to compute."""
        with self._lock:
            self._steps[rank] = step
        if self.step_listener is not None:
            self.step_listener(rank, step)

    def current_step(self, rank: int) -> int | None:
        """The step ``rank`` last announced, or None (int | None)."""
        with self._lock:
            return self._steps.get(rank)

    # -- core firing logic ------------------------------------------------

    def _fires(self, kind: str, rank: int, step: int | None,
               target: str | None = None) -> FaultSpec | None:
        """The first armed spec firing at this site, or None (FaultSpec).

        Firing consumes one of the spec's ``max_hits`` and increments
        the ``injected_<kind>`` counter.
        """
        if kind in self.disabled_kinds:
            return None
        with self._lock:
            for i, spec in enumerate(self.plan.faults):
                if spec.kind != kind:
                    continue
                if target is not None and spec.target != target:
                    continue
                if not spec.matches(rank, step):
                    continue
                if spec.max_hits and self._hits[i] >= spec.max_hits:
                    continue
                if spec.probability < 1.0 and \
                        self._rngs[i].random() >= spec.probability:
                    continue
                self._hits[i] += 1
                self.counters[f"injected_{kind}"] = \
                    self.counters.get(f"injected_{kind}", 0) + 1
                return spec
        return None

    # -- injection sites --------------------------------------------------

    def at_step(self, rank: int, step: int) -> None:
        """Driver hook at the top of each step: crash or straggle.

        Raises :class:`InjectedRankCrash` for an armed ``rank_crash``;
        sleeps for an armed ``straggler`` (absorbed faults count as
        detected and recovered immediately).
        """
        self.begin_step(rank, step)
        spec = self._fires("straggler", rank, step)
        if spec is not None:
            time.sleep(spec.delay)
            self.detected("straggler")
            self.recovered("straggler")
        if self._fires("rank_crash", rank, step) is not None:
            raise InjectedRankCrash(
                f"injected crash of rank {rank} at step {step}"
            )

    def on_send(self, rank: int, dest: int, payload):
        """Communicator hook on every point-to-point send.

        Returns the (possibly corrupted) payload to deliver, or
        :data:`DROPPED`.  Raises :class:`TransientCommError` for an
        armed ``comm_transient`` (the halo layer retries with backoff).
        """
        step = self.current_step(rank)
        if self._fires("comm_transient", rank, step) is not None:
            raise TransientCommError(
                f"injected transient send failure rank {rank} -> {dest}"
            )
        if self._fires("msg_drop", rank, step) is not None:
            return DROPPED
        spec = self._fires("msg_delay", rank, step)
        if spec is not None:
            time.sleep(spec.delay)
            self.detected("msg_delay")
            self.recovered("msg_delay")
        if self._fires("msg_corrupt", rank, step) is not None:
            payload = self._flip_bit(payload)
        return payload

    def io_fails(self, rank: int, target: str, step: int | None = None) -> bool:
        """Whether an armed ``io_fail`` hits this write (bool)."""
        if step is None:
            step = self.current_step(rank)
        return self._fires("io_fail", rank, step, target=target) is not None

    def corrupt_checkpoint_payload(self, rank: int, step: int,
                                   payload: bytes) -> bytes:
        """Returns the payload, bit-flipped if ``ckpt_bitflip`` fires (bytes)."""
        if self._fires("ckpt_bitflip", rank, step) is None:
            return payload
        buf = bytearray(payload)
        with self._lock:
            pos = self._flip_rng.randrange(len(buf))
            bit = self._flip_rng.randrange(8)
        buf[pos] ^= 1 << bit
        return bytes(buf)

    def _flip_bit(self, payload):
        """One-bit corruption of an array-ish payload (same type back)."""
        arr = payload.payload if isinstance(payload, HaloFrame) else payload
        if not isinstance(arr, np.ndarray) or arr.nbytes == 0:
            return payload
        flat = np.ascontiguousarray(arr).view(np.uint8).reshape(-1).copy()
        with self._lock:
            pos = self._flip_rng.randrange(flat.size)
            bit = self._flip_rng.randrange(8)
        flat[pos] ^= np.uint8(1 << bit)
        corrupted = flat.view(arr.dtype).reshape(arr.shape)
        if isinstance(payload, HaloFrame):
            return HaloFrame(crc=payload.crc, payload=corrupted)
        return corrupted
