"""Declarative fault plans: seeded, step/rank-addressable chaos specs.

Production campaigns at paper scale (1.6 M cores, 10'000-100'000 steps
stitched across restarts, Sections 1 and 7) routinely see rank loss,
stragglers and silent data corruption.  A :class:`FaultPlan` describes a
reproducible set of such faults so the recovery machinery can be
exercised deterministically: every spec is addressable by rank and step,
probabilistic specs draw from a stream seeded by ``(plan.seed, spec
index)``, and a ``max_hits`` bound makes transient faults stop firing --
the property that lets a rolled-back run get past the step that killed
its predecessor.

The plan is pure data (JSON round-trippable for ``repro.cli
--fault-plan``); arming it at runtime is the job of
:class:`repro.resilience.inject.FaultInjector`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

#: The fault taxonomy (see ``docs/resilience.md``).
KINDS = (
    "rank_crash",      # the rank raises at the top of the addressed step
    "comm_transient",   # a point-to-point send raises TransientCommError
    "msg_drop",         # a halo message is silently never delivered
    "msg_delay",        # a halo message is delayed by ``delay`` seconds
    "msg_corrupt",      # one bit of a halo payload flips in transit
    "straggler",        # the rank sleeps ``delay`` seconds at step start
    "ckpt_bitflip",     # one bit of a checkpoint rank-block flips (SDC)
    "io_fail",          # a collective write fails (``target`` selects
                        # "dump" or "checkpoint")
)


@dataclass
class FaultSpec:
    """One addressable fault.

    ``rank``/``step`` of ``None`` match any rank / any step (steps are
    the 1-based step numbers the driver is computing when the fault
    fires).  ``probability`` gates each match through the spec's seeded
    stream; ``max_hits`` bounds total firings across the whole campaign
    (0 = unlimited).  ``delay`` is the sleep in seconds for
    ``straggler``/``msg_delay``; ``target`` selects the writer for
    ``io_fail`` ("dump" or "checkpoint").
    """

    kind: str
    rank: int | None = None
    step: int | None = None
    probability: float = 1.0
    max_hits: int = 1
    delay: float = 0.0
    target: str = "dump"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_hits < 0:
            raise ValueError("max_hits must be >= 0 (0 = unlimited)")
        if self.delay < 0.0:
            raise ValueError("delay must be >= 0")
        if self.kind == "io_fail" and self.target not in ("dump", "checkpoint"):
            raise ValueError("io_fail target must be 'dump' or 'checkpoint'")

    def matches(self, rank: int, step: int | None) -> bool:
        """Whether this spec addresses ``(rank, step)`` (bool).

        ``step=None`` at the call site (a site that does not know the
        current step) matches only specs without a step address.
        """
        if self.rank is not None and self.rank != rank:
            return False
        if self.step is not None and self.step != step:
            return False
        return True


@dataclass
class FaultPlan:
    """A seeded collection of :class:`FaultSpec` entries.

    An empty plan is valid (the injector then acts as a pure
    resilience-statistics monitor).
    """

    seed: int = 2013
    faults: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self):
        self.faults = [
            f if isinstance(f, FaultSpec) else FaultSpec(**f)
            for f in self.faults
        ]

    def kinds(self) -> set[str]:
        """The set of fault kinds this plan can inject (set[str])."""
        return {f.kind for f in self.faults}

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        """Returns a ``json.dumps``-ready dict of the whole plan."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Builds a plan from :meth:`to_dict` output (FaultPlan)."""
        return cls(seed=int(data.get("seed", 2013)),
                   faults=list(data.get("faults", [])))

    def to_json(self) -> str:
        """Returns the plan as an indented JSON document (str)."""
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parses a plan from JSON text (FaultPlan)."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Loads a plan from a JSON file (FaultPlan)."""
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_json(f.read())

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json() + "\n")
