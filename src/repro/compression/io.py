"""Collective compressed-file I/O.

"MPI parallel file I/O is employed to generate a single compressed file
per quantity.  Since the size of the compressed data changes from rank to
rank, the I/O write collective operation is preceded by an exclusive
prefix sum.  After the scan, each rank acquires a destination offset and,
starting from that offset, writes its compressed buffer in the file."
(paper Section 6)

File format: a fixed-size JSON header (rank offsets, sizes and
per-rank compression metadata) followed by the concatenated rank payloads.
Each rank opens the shared file and writes at its own offset -- the same
collective-write algorithm as the paper's MPI-IO path, expressed with
POSIX positioned writes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..telemetry.clock import now
from .scheme import CompressedField, WaveletCompressor

#: Fixed header size: JSON padded with spaces.  Large enough for hundreds
#: of ranks; the writer fails loudly if the index outgrows it.
HEADER_SIZE = 65536
_MAGIC = "repro-wavelet-dump-v1"


@dataclass
class WriteStats:
    """Per-rank outcome of a collective write (IO row of Table 4)."""

    offset: int
    nbytes: int
    seconds: float


def write_compressed_parallel(
    comm,
    path: str,
    quantity: str,
    cf: CompressedField,
    rank_meta: dict | None = None,
) -> WriteStats:
    """Collectively write one compressed quantity to a shared file.

    Every rank passes its own :class:`CompressedField`; offsets come from
    an exclusive prefix sum over the payload sizes (the paper's exscan).
    Rank 0 writes the header.  Returns this rank's :class:`WriteStats`.
    """
    size = len(cf.payload)
    offset = comm.exscan(size, op="sum") + HEADER_SIZE

    # Rank 0 assembles the index (offsets, sizes, metadata of every rank).
    metas = comm.gather({"offset": offset, "size": size, "meta": cf.metadata(),
                         "extra": rank_meta or {}}, root=0)
    if comm.rank == 0:
        header = {
            "magic": _MAGIC,
            "quantity": quantity,
            "ranks": metas,
        }
        blob = json.dumps(header).encode()
        if len(blob) > HEADER_SIZE:
            raise ValueError(
                f"header of {len(blob)} bytes exceeds HEADER_SIZE={HEADER_SIZE}"
            )
        with open(path, "wb") as f:
            f.write(blob.ljust(HEADER_SIZE))
    comm.barrier()  # header exists before anyone writes payloads

    t0 = now()
    with open(path, "r+b") as f:
        f.seek(offset)
        f.write(cf.payload)
    elapsed = now() - t0
    comm.barrier()  # file complete before anyone proceeds
    return WriteStats(offset=offset, nbytes=size, seconds=elapsed)


def read_header(path: str) -> dict:
    """Read and parse the fixed-size header of a dump file."""
    with open(path, "rb") as f:
        blob = f.read(HEADER_SIZE)
    header = json.loads(blob.decode().rstrip())
    if header.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro wavelet dump")
    return header


def read_compressed(path: str) -> list[CompressedField]:
    """Read every rank's compressed field from a dump file."""
    header = read_header(path)
    out: list[CompressedField] = []
    with open(path, "rb") as f:
        for entry in header["ranks"]:
            f.seek(entry["offset"])
            payload = f.read(entry["size"])
            out.append(CompressedField.from_metadata(payload, entry["meta"]))
    return out


def read_field(path: str, compressor: WaveletCompressor | None = None) -> np.ndarray:
    """Reassemble the global field of a dump written by ranks laid out
    along the z axis slab-wise (the reader of single-rank dumps and of
    driver dumps, which record each rank's subdomain origin in ``extra``).
    """
    header = read_header(path)
    compressor = compressor or WaveletCompressor()
    pieces = []
    with open(path, "rb") as f:
        for entry in header["ranks"]:
            f.seek(entry["offset"])
            payload = f.read(entry["size"])
            cf = CompressedField.from_metadata(payload, entry["meta"])
            origin = tuple(entry.get("extra", {}).get("origin_cells", (0, 0, 0)))
            pieces.append((origin, compressor.decompress(cf)))
    if len(pieces) == 1:
        return pieces[0][1]
    # Stitch subdomains by cell origin.
    max_corner = [0, 0, 0]
    for origin, fld in pieces:
        for d in range(3):
            max_corner[d] = max(max_corner[d], origin[d] + fld.shape[d])
    out = np.zeros(tuple(max_corner), dtype=pieces[0][1].dtype)
    for origin, fld in pieces:
        sel = tuple(slice(o, o + s) for o, s in zip(origin, fld.shape))
        out[sel] = fld
    return out


def file_size(path: str) -> int:
    """Size of a dump file in bytes (header + payloads)."""
    return os.path.getsize(path)
