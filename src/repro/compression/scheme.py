"""The complete wavelet compression pipeline (paper Section 5, Fig. 3).

Design features reproduced from the paper:

* data dumps of one scalar quantity at a time (p and Gamma in production);
* parallel granularity of one block: every block is FWT'd and decimated
  independently ("on the interval" wavelets make blocks independent
  datasets);
* per-thread buffers: blocks are assigned to threads in SFC order and each
  thread's detail coefficients are encoded as a single zlib stream;
* in-place transform, decimation and encoding;
* full instrumentation of the DEC / ENC stage times, from which the
  Table 4 work-imbalance statistics are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..node.dispatcher import simulate_dynamic_schedule
from ..telemetry.clock import now
from ..node.sfc import morton_order
from . import zerotree
from .decimation import DecimationStats, decimate, guaranteed_threshold
from .encoder import EncodeStats, StreamEncoder
from .wavelet import fwt3d, iwt3d, max_levels


@dataclass
class CompressionStats:
    """Aggregate outcome of compressing one field."""

    raw_bytes: int
    compressed_bytes: int
    dec_seconds: np.ndarray  #: per-block FWT+decimation times
    enc_stats: list[EncodeStats]
    decimation: list[DecimationStats]

    @property
    def rate(self) -> float:
        """Compression rate ``raw : 1`` (paper reports 10-150:1)."""
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 0.0

    def imbalance(self, num_threads: int) -> dict[str, float]:
        """Per-stage work imbalance ``(t_max - t_min)/t_avg`` (Table 4).

        DEC imbalance comes from dynamically scheduling the per-block
        times over ``num_threads``; ENC imbalance directly from the
        per-thread stream times.
        """
        dec = simulate_dynamic_schedule(self.dec_seconds, num_threads).imbalance
        enc_times = np.array([s.seconds for s in self.enc_stats])
        if enc_times.size and enc_times.mean() > 0:
            enc = float((enc_times.max() - enc_times.min()) / enc_times.mean())
        else:
            enc = 0.0
        return {"DEC": dec, "ENC": enc}


@dataclass
class CompressedField:
    """Self-describing compressed representation of one scalar field."""

    payload: bytes
    field_shape: tuple[int, int, int]
    block_size: int
    levels: int
    eps: float
    dtype: str
    stats: CompressionStats = field(repr=False, default=None)

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def metadata(self) -> dict:
        """JSON-serializable metadata (stored in the file header)."""
        return {
            "field_shape": list(self.field_shape),
            "block_size": self.block_size,
            "levels": self.levels,
            "eps": self.eps,
            "dtype": self.dtype,
        }

    @staticmethod
    def from_metadata(payload: bytes, meta: dict) -> "CompressedField":
        return CompressedField(
            payload=payload,
            field_shape=tuple(meta["field_shape"]),
            block_size=int(meta["block_size"]),
            levels=int(meta["levels"]),
            eps=float(meta["eps"]),
            dtype=meta["dtype"],
        )


class WaveletCompressor:
    """Block-parallel wavelet compressor for scalar fields.

    Parameters
    ----------
    eps:
        L-infinity error bound of the lossy decimation (paper: 1e-2 for
        pressure, 1e-3 for Gamma, relative to the fields' natural units).
    block_size:
        Compression block edge; ``None`` picks the largest power-of-two
        divisor of the field extents up to 32.
    num_threads:
        Number of per-thread encode streams.
    guaranteed:
        Apply the per-level threshold scaling that makes ``eps`` a strict
        L-infinity bound (see :mod:`repro.compression.decimation`).
    encoder_kind:
        Lossless/embedded entropy stage: ``"zlib"`` (the paper's shipped
        coder) or ``"zerotree"`` (the EZW alternative it cites --
        higher compression, slower).
    """

    def __init__(
        self,
        eps: float = 1e-3,
        block_size: int | None = None,
        num_threads: int = 4,
        zlib_level: int = 6,
        guaranteed: bool = True,
        encoder_kind: str = "zlib",
    ):
        if encoder_kind not in ("zlib", "zerotree"):
            raise ValueError(f"unknown encoder {encoder_kind!r}")
        self.eps = float(eps)
        self.block_size = block_size
        self.num_threads = int(num_threads)
        self.encoder = StreamEncoder(level=zlib_level)
        self.guaranteed = guaranteed
        self.encoder_kind = encoder_kind

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _auto_block_size(shape: tuple[int, int, int]) -> int:
        for candidate in (32, 16, 8):
            if all(n % candidate == 0 for n in shape):
                return candidate
        raise ValueError(
            f"field shape {shape} has no power-of-two block divisor >= 8"
        )

    @staticmethod
    def _block_indices(shape: tuple[int, int, int], bs: int) -> list[tuple[int, int, int]]:
        """Block coordinates in Morton order (SFC assignment to threads)."""
        counts = tuple(n // bs for n in shape)
        idx = np.array(
            [
                (bz, by, bx)
                for bz in range(counts[0])
                for by in range(counts[1])
                for bx in range(counts[2])
            ]
        )
        return [tuple(idx[i]) for i in morton_order(idx)]

    # -- pipeline ------------------------------------------------------------

    def compress(self, fld: np.ndarray) -> CompressedField:
        """Compress one 3D scalar field."""
        if fld.ndim != 3:
            raise ValueError("expected a 3D scalar field")
        fld = np.ascontiguousarray(fld, dtype=np.float32)
        bs = self.block_size or self._auto_block_size(fld.shape)
        if any(n % bs for n in fld.shape):
            raise ValueError(f"field shape {fld.shape} not divisible by block {bs}")
        levels = max_levels(bs)

        order = self._block_indices(fld.shape, bs)
        coeff_blocks: list[np.ndarray] = []
        dec_seconds = np.empty(len(order))
        dec_stats: list[DecimationStats] = []
        for i, (bz, by, bx) in enumerate(order):
            t0 = now()
            blk = fld[
                bz * bs : (bz + 1) * bs,
                by * bs : (by + 1) * bs,
                bx * bs : (bx + 1) * bs,
            ]
            coeffs = fwt3d(blk, levels)
            if self.encoder_kind == "zlib":
                dec_stats.append(
                    decimate(coeffs, levels, self.eps,
                             guaranteed=self.guaranteed)
                )
            dec_seconds[i] = now() - t0
            coeff_blocks.append(coeffs)

        if self.encoder_kind == "zerotree":
            payload, enc_stats = self._encode_zerotree(coeff_blocks, levels)
        else:
            payload, enc_stats = self.encoder.encode(
                coeff_blocks, self.num_threads
            )
        stats = CompressionStats(
            raw_bytes=fld.nbytes,
            compressed_bytes=len(payload),
            dec_seconds=dec_seconds,
            enc_stats=enc_stats,
            decimation=dec_stats,
        )
        return CompressedField(
            payload=payload,
            field_shape=fld.shape,
            block_size=bs,
            levels=levels,
            eps=self.eps,
            dtype="float32",
            stats=stats,
        )

    def _zerotree_t_stop(self, levels: int) -> float:
        """Embedded-coding stop threshold matching the eps contract."""
        if self.guaranteed:
            bs = self.block_size or 32
            return guaranteed_threshold(self.eps, (bs, bs, bs), levels)
        return self.eps

    def _encode_zerotree(self, blocks, levels):
        """Per-block EZW payloads, length-prefixed and concatenated."""
        import struct

        t_stop = self._zerotree_t_stop(levels)
        chunks = [struct.pack("<I", len(blocks))]
        stats: list[EncodeStats] = []
        for c in blocks:
            t0 = now()
            payload, zst = zerotree.encode(
                np.asarray(c, dtype=np.float64), levels, t_stop=t_stop
            )
            elapsed = now() - t0
            chunks.append(struct.pack("<I", len(payload)))
            chunks.append(payload)
            stats.append(
                EncodeStats(
                    raw_bytes=c.size * 4,
                    compressed_bytes=len(payload),
                    num_blocks=1,
                    seconds=elapsed,
                )
            )
        return b"".join(chunks), stats

    def _decode_zerotree(self, payload: bytes, levels: int):
        import struct

        (count,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        blocks = []
        for _ in range(count):
            (size,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            blocks.append(
                zerotree.decode(payload[offset : offset + size], levels)
            )
            offset += size
        return blocks

    def decompress(self, cf: CompressedField) -> np.ndarray:
        """Exact inverse of the lossless stages (lossy error <= eps)."""
        bs = cf.block_size
        if self.encoder_kind == "zerotree":
            blocks = self._decode_zerotree(cf.payload, cf.levels)
        else:
            blocks = self.encoder.decode(cf.payload, (bs, bs, bs))
        order = self._block_indices(cf.field_shape, bs)
        if len(blocks) != len(order):
            raise ValueError("payload block count does not match field shape")
        out = np.empty(cf.field_shape, dtype=np.dtype(cf.dtype))
        for (bz, by, bx), coeffs in zip(order, blocks):
            out[
                bz * bs : (bz + 1) * bs,
                by * bs : (by + 1) * bs,
                bx * bs : (bx + 1) * bs,
            ] = iwt3d(coeffs, cf.levels)
        return out
