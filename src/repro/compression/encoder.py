"""Lossless encoding of decimated wavelet coefficients.

"The significant detail coefficients are further compressed by undergoing
a lossless encoding with an external coder, here the ZLIB library.
Instead of encoding the detail coefficients of each block independently,
we concatenate them into small, per-thread buffers and we encode them as a
single stream.  The detail coefficients of adjacent blocks are expected to
assume similar ranges, leading to more efficient data compression."
(paper Section 5)

:class:`StreamEncoder` reproduces that design: blocks are assigned to
per-thread buffers in SFC order, each buffer is zlib-deflated as one
stream, and the per-rank payload is the concatenation of the thread
streams with a compact framing header.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..telemetry.clock import now

#: Framing magic for an encoded multi-stream payload.
_MAGIC = b"RPRW"
_HEADER = struct.Struct("<4sIII")  # magic, n_streams, block_elems, dtype code
_STREAM_HEADER = struct.Struct("<II")  # compressed size, n_blocks

_DTYPES = {0: np.float32, 1: np.float64}
_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}


@dataclass
class EncodeStats:
    """Per-stream encoding outcome (feeds the Table 4 imbalance metric)."""

    raw_bytes: int
    compressed_bytes: int
    num_blocks: int
    seconds: float = 0.0  #: wall time deflating this stream

    @property
    def rate(self) -> float:
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 0.0


class StreamEncoder:
    """Encodes equally-shaped coefficient blocks into per-thread streams."""

    def __init__(self, level: int = 6):
        #: zlib compression level (paper uses the ZLIB default).
        self.level = level

    def encode(
        self, blocks: list[np.ndarray], num_streams: int
    ) -> tuple[bytes, list[EncodeStats]]:
        """Concatenate blocks round-robin-contiguously into ``num_streams``
        buffers and deflate each as a single stream.

        Blocks must share shape and dtype.  Returns the framed payload and
        per-stream stats.  Block order is preserved (stream ``s`` holds the
        contiguous slice of blocks assigned to thread ``s``), so adjacent
        blocks -- which the SFC made spatial neighbors -- share a stream.
        """
        if not blocks:
            raise ValueError("no blocks to encode")
        shape = blocks[0].shape
        dtype = np.dtype(blocks[0].dtype)
        if dtype not in _DTYPE_CODES:
            raise TypeError(f"unsupported dtype {dtype}")
        for b in blocks:
            if b.shape != shape or b.dtype != dtype:
                raise ValueError("all blocks must share shape and dtype")
        num_streams = max(1, min(num_streams, len(blocks)))
        block_elems = int(np.prod(shape))

        # Contiguous partition: thread s gets blocks [bounds[s], bounds[s+1]).
        counts = np.full(num_streams, len(blocks) // num_streams)
        counts[: len(blocks) % num_streams] += 1
        bounds = np.concatenate([[0], np.cumsum(counts)])

        chunks = [_HEADER.pack(_MAGIC, num_streams, block_elems, _DTYPE_CODES[dtype])]
        stats: list[EncodeStats] = []
        for s in range(num_streams):
            part = blocks[bounds[s] : bounds[s + 1]]
            raw = b"".join(np.ascontiguousarray(b).tobytes() for b in part)
            t0 = now()
            comp = zlib.compress(raw, self.level)
            elapsed = now() - t0
            chunks.append(_STREAM_HEADER.pack(len(comp), len(part)))
            chunks.append(comp)
            stats.append(
                EncodeStats(
                    raw_bytes=len(raw),
                    compressed_bytes=len(comp),
                    num_blocks=len(part),
                    seconds=elapsed,
                )
            )
        return b"".join(chunks), stats

    def decode(self, payload: bytes, block_shape: tuple[int, ...]) -> list[np.ndarray]:
        """Inverse of :meth:`encode`: returns the blocks in original order."""
        magic, n_streams, block_elems, dtype_code = _HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise ValueError("bad payload magic")
        dtype = np.dtype(_DTYPES[dtype_code])
        if int(np.prod(block_shape)) != block_elems:
            raise ValueError(
                f"block shape {block_shape} does not match payload "
                f"element count {block_elems}"
            )
        offset = _HEADER.size
        blocks: list[np.ndarray] = []
        for _ in range(n_streams):
            comp_size, n_blocks = _STREAM_HEADER.unpack_from(payload, offset)
            offset += _STREAM_HEADER.size
            raw = zlib.decompress(payload[offset : offset + comp_size])
            offset += comp_size
            arr = np.frombuffer(raw, dtype=dtype).reshape((n_blocks,) + tuple(block_shape))
            blocks.extend(np.array(a) for a in arr)
        return blocks
