"""The paper's AMR-profitability argument, quantified (Section 7).

"Thresholds considered in wavelet- and AMR-based simulation are usually
set so as to keep the L-inf (or L1) errors below 1e-4 - 1e-7.  Here,
these thresholds lead to an unprofitable compression rate of 1.15:1 at
best, by considering independently each scalar field, and 1.02:1 by
considering the flow quantities as one vector field.  This demonstrates
that AMR techniques would not have provided significant improvements in
terms of time to solution for this flow."

An AMR code coarsens a region only when *every* evolved quantity is
smooth there at solver accuracy; the wavelet detail magnitudes of a block
are exactly the refinement indicator.  :func:`amr_profitability` measures,
per threshold, the fraction of blocks that could be coarsened -- per
scalar quantity (the optimistic per-field bound) and for the 7-quantity
vector field (what an actual AMR mesh must satisfy) -- and converts it to
the equivalent cell-count "compression rate" the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..physics.state import NQ
from .wavelet import detail_mask, fwt3d, max_levels


@dataclass(frozen=True)
class AmrProfile:
    """AMR coarsening potential at one threshold."""

    threshold: float
    #: fraction of blocks coarsenable for the *easiest* scalar quantity
    best_scalar_coarsenable: float
    #: fraction of blocks coarsenable for the full vector state
    vector_coarsenable: float

    @property
    def best_scalar_rate(self) -> float:
        """Equivalent cell-count rate if each scalar had its own mesh."""
        return 1.0 / max(1.0 - self.best_scalar_coarsenable * (1.0 - 0.125), 1e-9)

    @property
    def vector_rate(self) -> float:
        """Equivalent cell-count rate of one shared AMR mesh (coarsened
        blocks hold 1/8 of the cells of refined ones)."""
        return 1.0 / max(1.0 - self.vector_coarsenable * (1.0 - 0.125), 1e-9)


def _block_detail_max(field: np.ndarray, block_size: int) -> np.ndarray:
    """Max |detail| per block of one scalar field, normalized to range."""
    scale = float(field.max() - field.min()) or 1.0
    counts = tuple(n // block_size for n in field.shape)
    levels = max_levels(block_size)
    mask = detail_mask((block_size,) * 3, levels)
    out = np.empty(counts)
    for bz in range(counts[0]):
        for by in range(counts[1]):
            for bx in range(counts[2]):
                blk = field[
                    bz * block_size : (bz + 1) * block_size,
                    by * block_size : (by + 1) * block_size,
                    bx * block_size : (bx + 1) * block_size,
                ].astype(np.float64)
                c = fwt3d(blk, levels)
                out[bz, by, bx] = np.abs(c[mask]).max() / scale
    return out


def amr_profitability(
    field_aos: np.ndarray,
    thresholds=(1e-4, 1e-5, 1e-6, 1e-7),
    block_size: int = 16,
) -> list[AmrProfile]:
    """Coarsening potential of a 7-quantity AoS field at solver-accuracy
    thresholds (relative to each quantity's range)."""
    if field_aos.shape[-1] != NQ:
        raise ValueError("expected an AoS field with the quantity axis last")
    per_q = [
        _block_detail_max(field_aos[..., q], block_size) for q in range(NQ)
    ]
    profiles = []
    for t in thresholds:
        coarsenable_q = [(d < t).mean() for d in per_q]
        vector = np.ones_like(per_q[0], dtype=bool)
        for d in per_q:
            vector &= d < t
        profiles.append(
            AmrProfile(
                threshold=float(t),
                best_scalar_coarsenable=float(max(coarsenable_q)),
                vector_coarsenable=float(vector.mean()),
            )
        )
    return profiles
