"""Lossy decimation of wavelet detail coefficients.

"Lossy compression: detail coefficients are decimated ...  In terms of
accuracy, it is guaranteed that the decimation will not lead to errors
larger than the threshold eps" (paper Section 5).

Zeroing a set of detail coefficients changes the reconstruction by the
inverse transform of the zeroed values.  Since the inverse transform is
linear, the L-infinity reconstruction error of zeroing coefficients each
bounded by ``t`` is bounded *exactly and tightly* by ``t`` times the
inverse transform -- with absolute-valued filter weights -- of the detail
indicator mask (triangle inequality, attained in the worst case when signs
align).  :func:`exact_amplification` computes that factor once per
``(shape, levels)`` and caches it; :func:`decimate` divides the requested
``eps`` by it so the bound is a real guarantee (property-tested).

A closed-form factor would have to assume the worst stencil everywhere
(the one-sided boundary extrapolation has an L1 gain of 6) and would be
orders of magnitude too conservative; the operator-based factor is tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .wavelet import detail_mask, iwt3d_abs


@lru_cache(maxsize=64)
def exact_amplification(shape: tuple[int, int, int], levels: int) -> float:
    """Worst-case L-infinity error per unit decimation threshold.

    The maximum over output points of the absolute-weight inverse
    transform applied to the detail indicator: a rigorous, tight bound on
    ``|iwt3d(zeroed)|_inf / t``.
    """
    if levels == 0:
        return 0.0
    indicator = detail_mask(shape, levels).astype(np.float64)
    return float(iwt3d_abs(indicator, levels).max())


def guaranteed_threshold(eps: float, shape: tuple[int, int, int], levels: int) -> float:
    """Per-coefficient threshold that guarantees ``|error|_inf <= eps``."""
    if levels == 0:
        return 0.0
    return eps / exact_amplification(tuple(shape), levels)


@dataclass
class DecimationStats:
    """Outcome of decimating one coefficient block."""

    total_details: int
    zeroed: int
    threshold: float

    @property
    def survival_fraction(self) -> float:
        """Fraction of detail coefficients kept (data-dependent work --
        the source of the DEC imbalance in Table 4)."""
        if self.total_details == 0:
            return 0.0
        return 1.0 - self.zeroed / self.total_details


def decimate(
    coeffs: np.ndarray,
    levels: int,
    eps: float,
    guaranteed: bool = True,
) -> DecimationStats:
    """Zero small detail coefficients of a 3D transform, in place.

    Parameters
    ----------
    coeffs:
        Output of :func:`repro.compression.wavelet.fwt3d` (modified in
        place -- the paper performs "in-place transform, decimation and
        encoding").
    levels:
        Number of transform levels.
    eps:
        Decimation threshold.  With ``guaranteed=True`` the reconstruction
        error is strictly bounded by ``eps`` in L-infinity; with ``False``
        the raw magnitude threshold is ``eps`` itself (the paper's usage:
        higher compression, error typically a small multiple of ``eps``
        and strictly bounded by ``eps * exact_amplification(...)``).
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    mask = detail_mask(coeffs.shape, levels)
    t = guaranteed_threshold(eps, coeffs.shape, levels) if guaranteed else eps
    details = coeffs[mask]
    small = np.abs(details) < t
    details[small] = 0.0
    coeffs[mask] = details
    return DecimationStats(
        total_details=int(mask.sum()),
        zeroed=int(small.sum()),
        threshold=float(t),
    )
