"""Fourth-order interpolating wavelets on the interval (FWT kernel).

The paper's compression scheme builds on fourth-order interpolating
(Deslauriers--Dubuc) wavelets "on the interval" (Cohen, Daubechies & Vial;
Donoho): a predict-only lifting transform whose scaling coefficients are
the even samples and whose detail coefficients are the interpolation
errors at the odd samples,

    d_k = x_{2k+1} - P4(x_{2k-2}, x_{2k}, x_{2k+2}, x_{2k+4}),

with the centered cubic weights ``(-1/16, 9/16, 9/16, -1/16)`` and
one-sided cubic stencils at the boundaries (the "on the interval"
property, which is what lets every 32^3 block be transformed as an
independent dataset).

The 3D transform is separable: 1D filtering along the contiguous axis plus
x-y and x-z transpositions, repeated per multiresolution level on the
coarse corner -- the same three substages the paper vectorizes with QPX
(Section 6, "Enhancing DLP").

Layout: one in-place-style level maps a length-``N`` axis to
``[N/2 scaling | N/2 details]``; level ``l+1`` recurses on the leading
half.  :func:`fwt3d` / :func:`iwt3d` are exact inverses (property-tested).
"""

from __future__ import annotations

import numpy as np

#: Centered Deslauriers-Dubuc 4-point prediction weights.
_W_CENTER = np.array([-1.0, 9.0, 9.0, -1.0]) / 16.0
#: One-sided cubic Lagrange weights predicting odd sample 1 from evens
#: 0, 2, 4, 6 (left boundary) -- right boundary uses the mirror image.
_W_LEFT = np.array([5.0, 15.0, -5.0, 1.0]) / 16.0
#: L1 norm of the prediction weights: error amplification per level.
PREDICT_GAIN = float(np.abs(_W_CENTER).sum())  # = 1.25

#: Minimum even-sample count for the cubic boundary stencils.
_MIN_COARSE = 4


def max_levels(n: int) -> int:
    """Deepest multiresolution analysis applicable to an axis of ``n``.

    Each level halves the axis; the cubic interval stencils need at least
    ``2 * _MIN_COARSE`` samples before a level can be applied.
    """
    levels = 0
    while n % 2 == 0 and n >= 2 * _MIN_COARSE:
        n //= 2
        levels += 1
    return levels


def _predict_with(even: np.ndarray, w_center, w_left, w_inner, w_outer) -> np.ndarray:
    """Prediction of the odd samples with explicit stencil weights."""
    m = even.shape[-1]
    if m < _MIN_COARSE:
        raise ValueError(f"need >= {_MIN_COARSE} coarse samples, got {m}")
    pred = np.empty_like(even)
    # Interior: odd slot k (between evens k and k+1) for k = 1 .. m-3.
    pred[..., 1 : m - 2] = (
        w_center[0] * even[..., 0 : m - 3]
        + w_center[1] * even[..., 1 : m - 2]
        + w_center[2] * even[..., 2 : m - 1]
        + w_center[3] * even[..., 3:m]
    )
    # Left boundary: odd slot 0 from evens 0..3 (one-sided cubic).
    pred[..., 0] = (
        w_left[0] * even[..., 0]
        + w_left[1] * even[..., 1]
        + w_left[2] * even[..., 2]
        + w_left[3] * even[..., 3]
    )
    # Right boundary: odd slot m-2 interpolated and slot m-1 extrapolated
    # from the last four evens (one-sided cubic stencils).
    pred[..., m - 2] = (
        w_inner[0] * even[..., m - 4]
        + w_inner[1] * even[..., m - 3]
        + w_inner[2] * even[..., m - 2]
        + w_inner[3] * even[..., m - 1]
    )
    pred[..., m - 1] = (
        w_outer[0] * even[..., m - 4]
        + w_outer[1] * even[..., m - 3]
        + w_outer[2] * even[..., m - 2]
        + w_outer[3] * even[..., m - 1]
    )
    return pred


def _predict(even: np.ndarray) -> np.ndarray:
    """Cubic interpolation of the odd samples from the even samples.

    ``even`` has ``m >= 4`` samples along the last axis; returns ``m``
    predictions (one per odd slot; the boundary slots use the one-sided
    "on the interval" cubic stencils).
    """
    return _predict_with(even, _W_CENTER, _W_LEFT, _W_RIGHT_INNER, _W_RIGHT_OUTER)


def _predict_abs(even: np.ndarray) -> np.ndarray:
    """Prediction with absolute-valued weights (error-bound propagation)."""
    return _predict_with(
        even,
        np.abs(_W_CENTER),
        np.abs(_W_LEFT),
        np.abs(_W_RIGHT_INNER),
        np.abs(_W_RIGHT_OUTER),
    )


def _lagrange_weights(nodes, x) -> np.ndarray:
    """Lagrange interpolation weights of ``nodes`` evaluated at ``x``."""
    nodes = np.asarray(nodes, dtype=np.float64)
    w = np.empty(nodes.size)
    for i in range(nodes.size):
        others = np.delete(nodes, i)
        w[i] = np.prod((x - others) / (nodes[i] - others))
    return w


# Right-boundary stencils: odd sample sits at grid position 2k+1; the last
# interior-capable odd is between evens m-3 and m-2.  Odd slot m-2 sits at
# position 2m-3 relative to evens at 0,2,..,2m-2: use the last four evens
# (2m-8 .. 2m-2), i.e. local nodes (0,2,4,6) evaluated at 5.  Odd slot m-1
# sits at 2m-1, *beyond* the last even: a cubic Lagrange extrapolation
# there has an L1 weight norm of 6, which makes the decimation error bound
# explode multiplicatively across levels (measured amplification ~1.3e5
# for a 32^3 / 3-level transform).  We instead predict it by mirror
# (even-symmetric) extension -- the DD4 stencil applied to the reflected
# samples collapses to ``9/8 * e[m-1] - 1/8 * e[m-2]`` -- whose gain of
# 1.375 keeps the exact bound at ~88 for 32^3 / 3 levels, at the cost of
# reduced prediction order at that single boundary sample per level.
_W_RIGHT_INNER = _lagrange_weights((0.0, 2.0, 4.0, 6.0), 5.0)
_W_RIGHT_OUTER = np.array([0.0, 0.0, -1.0 / 8.0, 9.0 / 8.0])


def fwt1d_level(x: np.ndarray) -> np.ndarray:
    """One forward level along the last axis: ``[scaling | details]``.

    The last axis must be even with at least ``2 * _MIN_COARSE`` samples.
    """
    n = x.shape[-1]
    if n % 2 or n < 2 * _MIN_COARSE:
        raise ValueError(f"axis length {n} not transformable")
    even = x[..., 0::2]
    odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., : n // 2] = even
    out[..., n // 2 :] = odd - _predict(even)
    return out


def iwt1d_level(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fwt1d_level` along the last axis."""
    n = c.shape[-1]
    if n % 2 or n < 2 * _MIN_COARSE:
        raise ValueError(f"axis length {n} not transformable")
    even = c[..., : n // 2]
    detail = c[..., n // 2 :]
    out = np.empty_like(c)
    out[..., 0::2] = even
    out[..., 1::2] = detail + _predict(even)
    return out


def _axis_last(a: np.ndarray, axis: int) -> np.ndarray:
    """Transpose ``axis`` to the last position (x-y / x-z transposition)."""
    return np.swapaxes(a, axis, a.ndim - 1)


def fwt3d(data: np.ndarray, levels: int | None = None) -> np.ndarray:
    """Separable 3D forward interpolating-wavelet transform.

    Parameters
    ----------
    data:
        3D array; all axes must support ``levels`` halvings.
    levels:
        Number of multiresolution levels (default: the deepest analysis
        the smallest axis supports).

    Returns
    -------
    Coefficient array, same shape: the ``(n/2^levels)^3`` leading corner
    holds the coarse approximation, everything else is detail.
    """
    if data.ndim != 3:
        raise ValueError("fwt3d expects a 3D array")
    if levels is None:
        levels = min(max_levels(n) for n in data.shape)
    if levels < 0 or levels > min(max_levels(n) for n in data.shape):
        raise ValueError(f"cannot apply {levels} levels to shape {data.shape}")
    c = np.array(data, copy=True)
    nz, ny, nx = c.shape
    for _ in range(levels):
        sub = c[:nz, :ny, :nx]
        # Filter along x, then (transpose) y, then (transpose) z.
        for axis in (2, 1, 0):
            view = _axis_last(sub, axis)
            filtered = fwt1d_level(np.ascontiguousarray(view))
            view[...] = filtered
        nz, ny, nx = nz // 2, ny // 2, nx // 2
    return c


def iwt3d(coeffs: np.ndarray, levels: int | None = None) -> np.ndarray:
    """Inverse of :func:`fwt3d` (exact reconstruction)."""
    if coeffs.ndim != 3:
        raise ValueError("iwt3d expects a 3D array")
    if levels is None:
        levels = min(max_levels(n) for n in coeffs.shape)
    c = np.array(coeffs, copy=True)
    shape = coeffs.shape
    sizes = [
        tuple(n // (1 << lvl) for n in shape) for lvl in range(levels, 0, -1)
    ]
    for nz, ny, nx in sizes:
        sub = c[: nz * 2, : ny * 2, : nx * 2]
        for axis in (0, 1, 2):
            view = _axis_last(sub, axis)
            restored = iwt1d_level(np.ascontiguousarray(view))
            view[...] = restored
    return c


def iwt3d_abs(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Inverse transform with absolute-valued weights.

    Applied to non-negative coefficient *magnitudes*, the result bounds
    (by the triangle inequality) the magnitude of the true inverse of any
    coefficient field dominated entrywise by ``coeffs``.  This is the
    engine of the exact decimation error bound in
    :func:`repro.compression.decimation.exact_amplification`.
    """
    if coeffs.ndim != 3:
        raise ValueError("iwt3d_abs expects a 3D array")
    c = np.array(coeffs, dtype=np.float64, copy=True)
    if (c < 0).any():
        raise ValueError("coefficient magnitudes must be non-negative")
    shape = coeffs.shape
    sizes = [tuple(n // (1 << lvl) for n in shape) for lvl in range(levels, 0, -1)]
    for nz, ny, nx in sizes:
        sub = c[: nz * 2, : ny * 2, : nx * 2]
        for axis in (0, 1, 2):
            view = _axis_last(sub, axis)
            x = np.ascontiguousarray(view)
            n = x.shape[-1]
            even = x[..., : n // 2]
            detail = x[..., n // 2 :]
            out = np.empty_like(x)
            out[..., 0::2] = even
            out[..., 1::2] = detail + _predict_abs(even)
            view[...] = out
    return c


def detail_mask(shape: tuple[int, int, int], levels: int) -> np.ndarray:
    """Boolean mask selecting the detail coefficients of a 3D transform."""
    mask = np.ones(shape, dtype=bool)
    corner = tuple(n // (1 << levels) for n in shape)
    mask[: corner[0], : corner[1], : corner[2]] = False
    return mask


def level_of_coefficient(shape: tuple[int, int, int], levels: int) -> np.ndarray:
    """Level index of every coefficient (0 = coarsest details).

    Coefficients in the coarse corner get level ``-1``; detail coefficients
    introduced when going from level ``l`` to ``l+1`` of the *inverse*
    transform get index ``l`` (coarse-to-fine).  Used for per-level
    decimation thresholds.
    """
    lvl = np.full(shape, -1, dtype=np.int8)
    for l_idx in range(levels):
        # Details of inverse step l_idx live in the region of the
        # (levels - l_idx)-times-halved cube minus its own coarse half.
        outer = tuple(n // (1 << (levels - 1 - l_idx)) for n in shape)
        inner = tuple(n // 2 for n in outer)
        region = lvl[: outer[0], : outer[1], : outer[2]]
        sel = region == -1
        sel[: inner[0], : inner[1], : inner[2]] = False
        region[sel] = l_idx
    # Restore the untouched coarse corner.
    corner = tuple(n // (1 << levels) for n in shape)
    lvl[: corner[0], : corner[1], : corner[2]] = -1
    return lvl
