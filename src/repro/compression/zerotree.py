"""Zerotree (EZW-style) coding of 3D wavelet coefficients.

The paper's encoder of record is zlib, but it notes that "alternatively
efficient lossy encoders can also be used such as the zerotree coding
scheme [Shapiro] and the SPIHT library".  This module implements a
3D embedded-zerotree coder over the block transforms of
:mod:`repro.compression.wavelet`:

* coefficients are organized in the dyadic parent-child octree of the
  Mallat layout (parent of position ``p`` is ``p // 2``; the coarse corner
  holds the roots);
* bitplane *dominant passes* emit 2-bit symbols -- significant-positive,
  significant-negative, zerotree root (the whole subtree is insignificant
  at the current threshold) or isolated zero;
* *subordinate passes* emit one refinement bit per already-significant
  coefficient, halving its uncertainty interval;
* the symbol stream is deflated with zlib as the final entropy stage.

The coder is *embedded*: truncating at any bitplane yields the best
approximation at that budget.  Encoding stops once the threshold drops
below ``t_stop``, which bounds the reconstruction error of every
coefficient by ``t_stop`` -- the same error contract as the decimation
stage, so the two are interchangeable inside the pipeline.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

_HEADER = struct.Struct("<4sIIIIdI")  # magic, nz, ny, nx, planes, T0, payload
_MAGIC = b"RPZT"

# Dominant-pass symbols (2 bits each).
_SYM_ZTR = 0  # zerotree root
_SYM_IZ = 1  # isolated zero
_SYM_POS = 2
_SYM_NEG = 3


class _BitWriter:
    def __init__(self):
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, bits: int) -> None:
        self._acc |= (value & ((1 << bits) - 1)) << self._nbits
        self._nbits += bits
        while self._nbits >= 8:
            self._bytes.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def write_array(self, values: np.ndarray, bits: int) -> None:
        for v in values.tolist():
            self.write(int(v), bits)

    def getvalue(self) -> bytes:
        out = bytearray(self._bytes)
        if self._nbits:
            out.append(self._acc & 0xFF)
        return bytes(out)


class _BitReader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, bits: int) -> int:
        while self._nbits < bits:
            if self._pos >= len(self._data):
                raise ValueError("zerotree bitstream truncated")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << bits) - 1)
        self._acc >>= bits
        self._nbits -= bits
        return value

    def read_array(self, count: int, bits: int) -> np.ndarray:
        return np.array([self.read(bits) for _ in range(count)], dtype=np.int64)


@lru_cache(maxsize=32)
def _scan_levels(shape: tuple[int, int, int], levels: int):
    """Per-level flat position indices, coarse-to-fine, C order.

    Level -1 is the coarse corner (the tree roots); level ``l`` is the
    annulus of positions introduced by inverse step ``l``.
    """
    nz, ny, nx = shape
    corner = tuple(n >> levels for n in shape)
    out = []
    grid = np.indices(shape).reshape(3, -1)
    flat = np.arange(nz * ny * nx)
    z, y, x = grid
    # Corner (roots).
    in_prev = (z < corner[0]) & (y < corner[1]) & (x < corner[2])
    out.append(flat[in_prev])
    for l_idx in range(levels):
        ext = tuple(c << (l_idx + 1) for c in corner)
        in_cur = (z < ext[0]) & (y < ext[1]) & (x < ext[2])
        out.append(flat[in_cur & ~in_prev])
        in_prev = in_cur
    return out


def _parent_flat(shape: tuple[int, int, int], flat_idx: np.ndarray) -> np.ndarray:
    """Flat index of each position's parent (position // 2 per axis)."""
    nz, ny, nx = shape
    z, rem = np.divmod(flat_idx, ny * nx)
    y, x = np.divmod(rem, nx)
    return ((z >> 1) * ny + (y >> 1)) * nx + (x >> 1)


def _subtree_max(coeffs_abs: np.ndarray, levels: int) -> np.ndarray:
    """``S[p] = max(|c[p]|, max over descendants)`` via pyramid reduction."""
    S = coeffs_abs.copy()
    nz, ny, nx = S.shape
    corner = min(n >> levels for n in S.shape)
    size = np.array(S.shape)
    while (size > (np.array(S.shape) >> levels)).any():
        half = size // 2
        child = S[: size[0], : size[1], : size[2]]
        cm = child.reshape(half[0], 2, half[1], 2, half[2], 2).max(axis=(1, 3, 5))
        region = S[: half[0], : half[1], : half[2]]
        np.maximum(
            coeffs_abs[: half[0], : half[1], : half[2]], cm, out=region
        )
        size = half
    return S


@dataclass
class ZerotreeStats:
    planes: int
    dominant_symbols: int
    refinement_bits: int
    raw_bytes: int
    compressed_bytes: int

    @property
    def rate(self) -> float:
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 0.0


def encode(
    coeffs: np.ndarray,
    levels: int,
    t_stop: float,
    max_planes: int = 24,
) -> tuple[bytes, ZerotreeStats]:
    """Encode a 3D coefficient block; error bounded by ``t_stop``."""
    if coeffs.ndim != 3:
        raise ValueError("zerotree encode expects a 3D coefficient block")
    if t_stop <= 0:
        raise ValueError("t_stop must be positive")
    c = np.asarray(coeffs, dtype=np.float64)
    flat = c.reshape(-1)
    absflat = np.abs(flat)
    vmax = float(absflat.max())
    if vmax < t_stop:
        planes = 0
        T0 = t_stop
    else:
        T0 = 2.0 ** np.floor(np.log2(vmax))
        # Enough planes that the last threshold T0 / 2^(planes-1) <= t_stop:
        # insignificant coefficients are then < t_stop and refined ones are
        # localized to intervals of width <= t_stop.
        planes = min(max_planes, int(np.ceil(np.log2(T0 / t_stop))) + 1)

    S = _subtree_max(np.abs(c), levels).reshape(-1)
    scan = _scan_levels(c.shape, levels)
    parents = [None] + [_parent_flat(c.shape, idx) for idx in scan[1:]]

    n = flat.size
    significant = np.zeros(n, dtype=bool)
    sig_order: list[np.ndarray] = []  # flat indices, in discovery order
    lo = np.zeros(n)  # uncertainty interval per significant coefficient
    hi = np.zeros(n)

    writer = _BitWriter()
    dom_count = 0
    ref_count = 0
    T = T0
    for _plane in range(planes):
        # -- subordinate pass: refine previously significant coefficients.
        for idx in sig_order:
            mid = 0.5 * (lo[idx] + hi[idx])
            bits = (absflat[idx] >= mid).astype(np.int64)
            writer.write_array(bits, 1)
            lo[idx] = np.where(bits == 1, mid, lo[idx])
            hi[idx] = np.where(bits == 1, hi[idx], mid)
            ref_count += idx.size

        # -- dominant pass.
        covered = np.zeros(n, dtype=bool)
        new_sig_this_plane: list[np.ndarray] = []
        for lvl, idx in enumerate(scan):
            if idx.size == 0:
                continue
            if lvl > 0:
                covered[idx] = covered[parents[lvl]]
            scanned = idx[~covered[idx] & ~significant[idx]]
            if scanned.size == 0:
                continue
            sym = np.empty(scanned.size, dtype=np.int64)
            is_sig = absflat[scanned] >= T
            subtree_quiet = S[scanned] < T
            sym[is_sig & (flat[scanned] >= 0)] = _SYM_POS
            sym[is_sig & (flat[scanned] < 0)] = _SYM_NEG
            sym[~is_sig & subtree_quiet] = _SYM_ZTR
            sym[~is_sig & ~subtree_quiet] = _SYM_IZ
            writer.write_array(sym, 2)
            dom_count += sym.size
            ztr = scanned[(~is_sig) & subtree_quiet]
            covered[ztr] = True
            newly = scanned[is_sig]
            if newly.size:
                significant[newly] = True
                lo[newly] = T
                hi[newly] = 2.0 * T
                new_sig_this_plane.append(newly)
        sig_order.extend(new_sig_this_plane)
        T *= 0.5

    raw_bits = writer.getvalue()
    payload = zlib.compress(raw_bits, 6)
    header = _HEADER.pack(
        _MAGIC, *c.shape, planes, T0, len(payload)
    )
    stats = ZerotreeStats(
        planes=planes,
        dominant_symbols=dom_count,
        refinement_bits=ref_count,
        raw_bytes=c.size * 4,
        compressed_bytes=len(header) + len(payload),
    )
    return header + payload, stats


def decode(data: bytes, levels: int) -> np.ndarray:
    """Decode a zerotree payload back to (quantized) coefficients."""
    magic, nz, ny, nx, planes, T0, payload_len = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("bad zerotree payload magic")
    shape = (nz, ny, nx)
    raw = zlib.decompress(data[_HEADER.size : _HEADER.size + payload_len])
    reader = _BitReader(raw)

    n = nz * ny * nx
    flat = np.zeros(n)
    significant = np.zeros(n, dtype=bool)
    sign = np.ones(n)
    lo = np.zeros(n)
    hi = np.zeros(n)
    sig_order: list[np.ndarray] = []

    scan = _scan_levels(shape, levels)
    parents = [None] + [_parent_flat(shape, idx) for idx in scan[1:]]

    T = T0
    for _plane in range(planes):
        for idx in sig_order:
            bits = reader.read_array(idx.size, 1)
            mid = 0.5 * (lo[idx] + hi[idx])
            lo[idx] = np.where(bits == 1, mid, lo[idx])
            hi[idx] = np.where(bits == 1, hi[idx], mid)

        covered = np.zeros(n, dtype=bool)
        new_sig_this_plane: list[np.ndarray] = []
        for lvl, idx in enumerate(scan):
            if idx.size == 0:
                continue
            if lvl > 0:
                covered[idx] = covered[parents[lvl]]
            scanned = idx[~covered[idx] & ~significant[idx]]
            if scanned.size == 0:
                continue
            sym = reader.read_array(scanned.size, 2)
            ztr = scanned[sym == _SYM_ZTR]
            covered[ztr] = True
            newly = scanned[(sym == _SYM_POS) | (sym == _SYM_NEG)]
            if newly.size:
                significant[newly] = True
                sign[scanned[sym == _SYM_NEG]] = -1.0
                lo[newly] = T
                hi[newly] = 2.0 * T
                new_sig_this_plane.append(newly)
        sig_order.extend(new_sig_this_plane)
        T *= 0.5

    mid = 0.5 * (lo + hi)
    flat[significant] = sign[significant] * mid[significant]
    return flat.reshape(shape)
