"""Wavelet-based data compression (paper Section 5, Fig. 3).

The "first of its kind efficient wavelet based compression scheme" that
cuts I/O time and disk footprint by 10-100x: fourth-order interpolating
wavelets on the interval, lossy detail decimation with a guaranteed
L-infinity bound, lossless per-thread zlib streams, and collective file
writes offset by an exclusive prefix sum.
"""

from .decimation import (
    DecimationStats,
    decimate,
    exact_amplification,
    guaranteed_threshold,
)
from .encoder import EncodeStats, StreamEncoder
from .io import (
    HEADER_SIZE,
    WriteStats,
    file_size,
    read_compressed,
    read_field,
    read_header,
    write_compressed_parallel,
)
from .amr_analysis import AmrProfile, amr_profitability
from .scheme import CompressedField, CompressionStats, WaveletCompressor
from . import zerotree
from .wavelet import (
    PREDICT_GAIN,
    detail_mask,
    fwt1d_level,
    fwt3d,
    iwt1d_level,
    iwt3d,
    level_of_coefficient,
    max_levels,
)

__all__ = [
    "AmrProfile",
    "CompressedField",
    "CompressionStats",
    "DecimationStats",
    "EncodeStats",
    "HEADER_SIZE",
    "PREDICT_GAIN",
    "StreamEncoder",
    "WaveletCompressor",
    "WriteStats",
    "amr_profitability",
    "decimate",
    "detail_mask",
    "exact_amplification",
    "file_size",
    "fwt1d_level",
    "fwt3d",
    "guaranteed_threshold",
    "iwt1d_level",
    "iwt3d",
    "level_of_coefficient",
    "max_levels",
    "read_compressed",
    "read_field",
    "read_header",
    "write_compressed_parallel",
    "zerotree",
]
